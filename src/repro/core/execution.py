"""The EXEIO automaton — Section IV(3), Fig. 6.

EXEIO models how the platform invokes ``Code(PIM)`` and moves events
across the io-boundary.  Its locations mirror the generated code's
execution stages::

    Waiting ──tick──▶ Read ──▶ Compute ──▶ Write… ──▶ Waiting

* **Waiting**: between invocations (invariant ``t ≤ period`` for the
  periodic mechanism; input-triggered via an *urgent* channel for the
  aperiodic one).
* **Read** (urgent, instantaneous): per input channel, the paper's
  *complementary transitions* — one edge per buffered event, guarded
  by the conjunction of (1) *MIO is in a location that can read the
  input*, (2) *the original data guard*, and (3) *the input is in the
  buffer*.  Conditions (1)+(2) are expressed over the ``mio_loc``
  shadow variable the transformation maintains on every MIO edge.  An
  event the code cannot consume is still dequeued (that is what
  read-one/read-all do in the implementation) and sets the
  ``code_drop`` flag — the observable Constraint 4 guards against.
* **Compute** (invariant ``e ≤ wcet``): MIO's output synchronizations
  land here and are *staged*; MIO can only take io-transitions while
  EXEIO is computing, which is exactly the quantization the paper's
  timing gaps come from.
* **Write** (committed chain, one stage per output channel): at some
  ``e ∈ [bcet, wcet]`` the staged outputs move into the output
  transports — or set the overflow flag when they do not fit
  (Constraint 3's subject).

Restriction (checked): input edges of ``M`` must not carry clock
guards, so that "MIO can read the input" is decidable from the
discrete state.  This matches how UPPAAL models encode the paper's
guard (1) and holds for event-style inputs like the pump's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interfaces import TransformError
from repro.core.psm import ChannelVars
from repro.core.scheme import (
    ImplementationScheme,
    InvocationKind,
    ReadPolicy,
)
from repro.ta.builder import AutomatonBuilder
from repro.ta.expr import Const
from repro.ta.model import Automaton

__all__ = [
    "InputEntry",
    "OutputEntry",
    "ExeioParts",
    "accept_expression",
    "build_exeio",
    "GO_CHANNEL",
]

#: Urgent channel that triggers aperiodic invocations.
GO_CHANNEL = "exe_go"


@dataclass(frozen=True)
class InputEntry:
    """One input channel as EXEIO sees it."""

    mc_channel: str
    io_name: str
    capacity: int
    read_policy: ReadPolicy
    vars: ChannelVars
    #: ``did_<io>`` flag name for read-one (empty for read-all).
    did_flag: str
    #: Guard source text for "MIO can consume this input now".
    accept: str


@dataclass(frozen=True)
class OutputEntry:
    """One output channel as EXEIO sees it."""

    mc_channel: str
    io_name: str
    capacity: int
    vars: ChannelVars


@dataclass(frozen=True)
class ExeioParts:
    """EXEIO plus the auxiliary pieces the network must also declare."""

    automaton: Automaton
    #: Extra automata (aperiodic trigger, replicas + voter, scheduler),
    #: possibly empty.
    extra_automata: tuple[Automaton, ...] = ()
    #: Extra urgent channels to declare, possibly empty.
    urgent_channels: tuple[str, ...] = ()
    #: Extra regular channels to declare (replica starts, votes,
    #: preemption handshake), possibly empty.
    extra_channels: tuple[str, ...] = ()
    #: Extra integer variables ``(name, hi)`` to declare, possibly
    #: empty (vote tally, shared replica-fault budget).
    int_vars: tuple[tuple[str, int], ...] = ()


def accept_expression(mio: Automaton, io_channel: str,
                      mio_loc_var: str) -> str:
    """Guard text for "MIO currently accepts ``io_channel``".

    Disjunction over MIO's receiving edges of *(location test ∧ data
    guard)*.  Raises :class:`TransformError` when a receiving edge
    carries a clock guard (see the module restriction).
    """
    loc_index = {loc.name: i for i, loc in enumerate(mio.locations)}
    terms: list[str] = []
    for edge in mio.edges:
        if edge.sync is None or edge.sync.is_emit:
            continue
        if edge.sync.channel != io_channel:
            continue
        if edge.guard.clock_constraints:
            raise TransformError(
                f"MIO edge {edge} carries a clock guard on input "
                f"channel {io_channel!r}; the read-stage acceptance "
                f"test cannot reference another automaton's clocks — "
                f"remove the guard or use a data encoding")
        term = f"{mio_loc_var} == {loc_index[edge.source]}"
        data = edge.guard.data
        if not (isinstance(data, Const) and data.value == 1):
            term = f"({term} && {data})"
        terms.append(term)
    if not terms:
        # MIO never reads this channel: nothing is ever acceptable.
        return "false"
    return " || ".join(f"({t})" for t in terms)


def build_exeio(
    scheme: ImplementationScheme,
    inputs: list[InputEntry],
    outputs: list[OutputEntry],
    *,
    code_drop_flag: str = "code_drop",
    name: str = "EXEIO",
) -> ExeioParts:
    """Construct the code-execution automaton for a scheme."""
    inv = scheme.invocation
    faults = scheme.faults
    preemptive = inv.kind is InvocationKind.PREEMPTIVE
    periodic = inv.kind is InvocationKind.PERIODIC or preemptive
    replicated = faults.replicas > 1
    eps = faults.jitter

    b = AutomatonBuilder(name, clocks=["t", "e"])

    did_resets = ", ".join(
        f"{entry.did_flag} = 0" for entry in inputs if entry.did_flag)

    # ---- Waiting → Read ------------------------------------------------
    if periodic:
        assert inv.period is not None
        period = inv.period
        wait_inv = f"t <= {period + eps}" if eps else f"t <= {period}"
        tick = f"t >= {period - eps}" if eps else f"t == {period}"
        b.location("Waiting", invariant=wait_inv, initial=True)
        b.location("Read", urgent=True)
        tick_update = "t = 0, e = 0"
        if did_resets:
            tick_update += f", {did_resets}"
        b.edge("Waiting", "Read", guard=tick,
               update=tick_update)
    else:
        b.location("Waiting", initial=True)
        b.location(
            "Sched",
            invariant=f"e <= {inv.latency_max + inv.min_separation}")
        b.location("Read", urgent=True)
        b.edge("Waiting", "Sched", sync=f"{GO_CHANNEL}?", update="e = 0")
        read_update = "t = 0, e = 0"
        if did_resets:
            read_update += f", {did_resets}"
        b.edge("Sched", "Read",
               guard=(f"e >= {inv.latency_min} && "
                      f"t >= {inv.min_separation}"),
               update=read_update)

    # ---- Read stage: the complementary transitions ----------------------
    for entry in inputs:
        cnt = entry.vars.count
        one = entry.read_policy is ReadPolicy.READ_ONE
        did_guard = f" && {entry.did_flag} == 0" if one else ""
        did_set = f", {entry.did_flag} = 1" if one else ""
        b.edge("Read", "Read",
               guard=f"{cnt} > 0{did_guard} && ({entry.accept})",
               sync=f"{entry.io_name}!",
               update=f"{cnt} = {cnt} - 1{did_set}")
        b.edge("Read", "Read",
               guard=f"{cnt} > 0{did_guard} && !({entry.accept})",
               update=f"{cnt} = {cnt} - 1, {code_drop_flag} = 1{did_set}")

    proceed_terms = []
    for entry in inputs:
        if entry.read_policy is ReadPolicy.READ_ONE:
            proceed_terms.append(
                f"({entry.vars.count} == 0 || {entry.did_flag} == 1)")
        else:
            proceed_terms.append(f"{entry.vars.count} == 0")
    proceed_guard = " && ".join(proceed_terms) if proceed_terms else None

    # ---- Compute stage ---------------------------------------------------
    extra_automata: list[Automaton] = []
    extra_channels: list[str] = []
    int_vars: list[tuple[str, int]] = []

    def stage_outputs(location: str) -> None:
        for entry in outputs:
            stg = entry.vars.staged
            b.edge(location, location, sync=f"{entry.io_name}?",
                   guard=f"{stg} < {entry.capacity}",
                   update=f"{stg} = {stg} + 1")
            b.edge(location, location, sync=f"{entry.io_name}?",
                   guard=f"{stg} == {entry.capacity}",
                   update=f"{entry.vars.overflow} = 1")

    if preemptive:
        # Unrolled interference: Compute_j has absorbed j bursts, each
        # of length [preempt_min, preempt_max] while the code is
        # suspended in Preempted_j (SCHED's Busy invariant caps the
        # burst, so Preempted_j needs none).  Outputs stage only while
        # the code actually runs.
        from repro.platforms.faults import (
            CSTART_CHANNEL,
            PREEMPT_CHANNEL,
            RESUME_CHANNEL,
            build_scheduler,
        )
        bursts = inv.preemptions
        compute_locs = [f"Compute_{j}" for j in range(bursts + 1)]
        for j, loc in enumerate(compute_locs):
            b.location(
                loc,
                invariant=f"e <= {inv.wcet + j * inv.preempt_max}")
        b.edge("Read", compute_locs[0], guard=proceed_guard,
               sync=f"{CSTART_CHANNEL}!")
        for j in range(bursts):
            b.location(f"Preempted_{j}")
            b.edge(compute_locs[j], f"Preempted_{j}",
                   sync=f"{PREEMPT_CHANNEL}?")
            b.edge(f"Preempted_{j}", compute_locs[j + 1],
                   sync=f"{RESUME_CHANNEL}?")
        for loc in compute_locs:
            stage_outputs(loc)
        completion_sources = compute_locs
        completion_guard = f"e >= {inv.bcet}"
        extra_automata.append(build_scheduler(inv))
        extra_channels += [CSTART_CHANNEL, PREEMPT_CHANNEL,
                           RESUME_CHANNEL]
    elif replicated:
        # Replicated execution: a committed launch chain restarts every
        # replica (aborting stragglers), clears the vote tally after
        # the last restart, and the invocation completes only once the
        # voter has collected a quorum.  Worst-case rounds bound the
        # Compute invariant — see FaultSpec.worst_case_rounds.
        from repro.platforms.faults import (
            VOTES_VAR,
            build_replicas_and_voter,
            replica_start_channel,
        )
        rounds = faults.worst_case_rounds()
        b.location("Compute", invariant=f"e <= {rounds * inv.wcet}")
        launches = [f"Launch_{i}"
                    for i in range(1, faults.replicas + 1)]
        for stage in launches:
            b.location(stage, committed=True)
        b.edge("Read", launches[0], guard=proceed_guard)
        for i, stage in enumerate(launches, start=1):
            target = launches[i] if i < len(launches) else "Compute"
            update = f"{VOTES_VAR} = 0" if i == len(launches) else None
            b.edge(stage, target, sync=f"{replica_start_channel(i)}!",
                   update=update)
        stage_outputs("Compute")
        completion_sources = ["Compute"]
        completion_guard = (f"e >= {inv.bcet} && "
                            f"{VOTES_VAR} >= {faults.quorum()}")
        replica_parts = build_replicas_and_voter(inv, faults)
        extra_automata += replica_parts.automata
        extra_channels += replica_parts.channels
        int_vars += replica_parts.int_vars
    else:
        b.location("Compute", invariant=f"e <= {inv.wcet}")
        b.edge("Read", "Compute", guard=proceed_guard)
        stage_outputs("Compute")
        completion_sources = ["Compute"]
        completion_guard = f"e >= {inv.bcet}"

    # ---- Write chain (committed, one stage per output channel) -----------
    if not outputs:
        for source in completion_sources:
            b.edge(source, "Waiting", guard=completion_guard)
    else:
        stages = [f"Write_{entry.io_name}" for entry in outputs]
        for stage in stages:
            b.location(stage, committed=True)
        for source in completion_sources:
            b.edge(source, stages[0], guard=completion_guard)
        for k, entry in enumerate(outputs):
            target = stages[k + 1] if k + 1 < len(stages) else "Waiting"
            cnt = entry.vars.count
            stg = entry.vars.staged
            b.edge(stages[k], target,
                   guard=f"{cnt} + {stg} <= {entry.capacity}",
                   update=f"{cnt} = {cnt} + {stg}, {stg} = 0")
            b.edge(stages[k], target,
                   guard=f"{cnt} + {stg} > {entry.capacity}",
                   update=f"{entry.vars.overflow} = 1, {stg} = 0")

    automaton = b.build()

    # ---- Aperiodic trigger automaton --------------------------------------
    if periodic:
        return ExeioParts(automaton=automaton,
                          extra_automata=tuple(extra_automata),
                          extra_channels=tuple(extra_channels),
                          int_vars=tuple(int_vars))
    if not inputs:
        raise TransformError(
            "aperiodic invocation requires at least one input channel "
            "to trigger on")
    trig = AutomatonBuilder(f"{name}_TRIG")
    trig.location("Run", initial=True)
    pending = " || ".join(f"{entry.vars.count} > 0" for entry in inputs)
    trig.edge("Run", "Run", guard=pending, sync=f"{GO_CHANNEL}!")
    return ExeioParts(
        automaton=automaton,
        extra_automata=(trig.build(),),
        urgent_channels=(GO_CHANNEL,),
    )
