"""The paper's contribution: schemes, PIM→PSM transformation, analysis."""

from repro.core.constraints import (
    ConstraintReport,
    ConstraintResult,
    check_all_constraints,
    check_constraint1,
    check_constraint2,
    check_constraint3,
    check_constraint4,
    check_progress,
)
from repro.core.delays import (
    DelayBounds,
    analytic_input_delay_bound,
    analytic_output_delay_bound,
    derive_bounds,
    internal_delay,
    relaxed_deadline,
    symbolic_input_delay,
    symbolic_mc_delay,
    symbolic_output_delay,
)
from repro.core.execution import GO_CHANNEL, accept_expression, build_exeio
from repro.core.framework import (
    TimingVerificationFramework,
    VerificationReport,
)
from repro.core.interfaces import (
    TransformError,
    build_ifmi,
    build_ifoc,
    effective_capacity,
    pickup_channel,
)
from repro.core.pim import PIM
from repro.core.psm import PSM, ChannelVars
from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SchemeError,
    SignalType,
    example_is1,
)
from repro.core.transform import transform

__all__ = [
    "PIM",
    "PSM",
    "ChannelVars",
    "ConstraintReport",
    "ConstraintResult",
    "DelayBounds",
    "DeliveryMechanism",
    "GO_CHANNEL",
    "ImplementationScheme",
    "InputSpec",
    "InvocationKind",
    "InvocationSpec",
    "IOSpec",
    "OutputSpec",
    "ReadMechanism",
    "ReadPolicy",
    "SchemeError",
    "SignalType",
    "TimingVerificationFramework",
    "TransformError",
    "VerificationReport",
    "accept_expression",
    "analytic_input_delay_bound",
    "analytic_output_delay_bound",
    "build_exeio",
    "build_ifmi",
    "build_ifoc",
    "check_all_constraints",
    "check_constraint1",
    "check_constraint2",
    "check_constraint3",
    "check_constraint4",
    "check_progress",
    "derive_bounds",
    "effective_capacity",
    "example_is1",
    "internal_delay",
    "pickup_channel",
    "relaxed_deadline",
    "symbolic_input_delay",
    "symbolic_mc_delay",
    "symbolic_output_delay",
    "transform",
]
