"""Input/output interface automata — Section IV(2), Fig. 5.

``IFMI_X`` models the Input-Device's data flow from a monitored
variable ``m_X`` to the processed program input: sensing (interrupt or
polling), a processing window ``[delay_min, delay_max]``, and delivery
into the io-boundary transport — with the two buffer cases of
Fig. 5-(1) (space available / full) made explicit.

``IFOC_Y`` models the Output-Device's flow from the program output
``o_Y`` to the controlled variable ``c_Y``: pickup from the transport
(event-driven, made prompt by an *urgent* pickup channel, or polling),
a processing window, and the actuation synchronization ``c_Y!`` toward
``ENVMC``.

All builders return plain :class:`~repro.ta.model.Automaton` objects;
the transformation (:mod:`repro.core.transform`) wires them, declares
their bookkeeping variables and validates cross-parameter sanity
(e.g. the chained-drain condition ``capacity·delay_max ≤ polling
interval`` for polled output devices).
"""

from __future__ import annotations

from repro.core.scheme import (
    DeliveryMechanism,
    FaultSpec,
    InputSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
)
from repro.core.psm import ChannelVars
from repro.ta.builder import AutomatonBuilder
from repro.ta.model import Automaton

__all__ = [
    "TransformError",
    "effective_capacity",
    "input_channel_vars",
    "output_channel_vars",
    "build_ifmi",
    "build_ifoc",
    "pickup_channel",
]


class TransformError(Exception):
    """Raised when a PIM/scheme pair cannot be transformed."""


def _base(io_name: str) -> str:
    """Variable-name stem for an io channel (``i_BolusReq`` → same)."""
    return io_name


def input_channel_vars(io_name: str, spec: InputSpec,
                       io_spec: IOSpec,
                       faults: FaultSpec | None = None) -> ChannelVars:
    """Bookkeeping variable names for one input channel."""
    stem = _base(io_name)
    polled = spec.mechanism is ReadMechanism.POLLING
    shared = io_spec.delivery is DeliveryMechanism.SHARED_VARIABLE
    lossy = faults is not None and faults.max_losses > 0
    return ChannelVars(
        count=f"cnt_{stem}",
        overflow=f"lost_{stem}" if shared else f"ovf_{stem}",
        latch=f"latch_{stem}" if polled else "",
        missed=f"miss_{stem}" if polled else "",
        faults=f"fd_{stem}" if lossy else "",
    )


def output_channel_vars(io_name: str, io_spec: IOSpec) -> ChannelVars:
    """Bookkeeping variable names for one output channel."""
    stem = _base(io_name)
    shared = io_spec.delivery is DeliveryMechanism.SHARED_VARIABLE
    return ChannelVars(
        count=f"cnt_{stem}",
        overflow=f"lost_{stem}" if shared else f"ovf_{stem}",
        staged=f"stg_{stem}",
    )


def pickup_channel(io_name: str) -> str:
    """Urgent channel forcing prompt event-driven output pickup."""
    return f"upick_{io_name}"


def effective_capacity(io_spec: IOSpec) -> int:
    """Effective transport capacity (shared variable == depth 1)."""
    if io_spec.delivery is DeliveryMechanism.SHARED_VARIABLE:
        return 1
    return io_spec.buffer_size


# Backwards-friendly internal alias.
_capacity = effective_capacity


# ----------------------------------------------------------------------
# IFMI
# ----------------------------------------------------------------------
def build_ifmi(mc_channel: str, io_name: str, spec: InputSpec,
               io_spec: IOSpec, vars_: ChannelVars,
               faults: FaultSpec | None = None) -> Automaton:
    """The input interface automaton for one monitored variable."""
    if spec.mechanism is ReadMechanism.INTERRUPT:
        return _build_ifmi_interrupt(mc_channel, io_name, spec, io_spec,
                                     vars_, faults)
    return _build_ifmi_polling(mc_channel, io_name, spec, io_spec, vars_,
                               faults)


def _enqueue_edges(b: AutomatonBuilder, source: str, target: str,
                   spec_min: int, cap: int, vars_: ChannelVars) -> None:
    """The Fig. 5-(1) pair: transport has space / transport is full.

    The full case covers both loss semantics: buffer overflow (event
    dropped, ``ovf`` flag) and shared-variable overwrite (old value
    lost, ``lost`` flag) — in either case the occupancy stays at the
    capacity and the flag records the loss.
    """
    b.edge(source, target,
           guard=f"y >= {spec_min} && {vars_.count} < {cap}",
           update=f"{vars_.count} = {vars_.count} + 1")
    b.edge(source, target,
           guard=f"y >= {spec_min} && {vars_.count} == {cap}",
           update=f"{vars_.overflow} = 1")


def _loss_retry_edge(b: AutomatonBuilder, spec: InputSpec,
                     vars_: ChannelVars,
                     faults: FaultSpec | None) -> None:
    """Lossy-channel re-execution (fault axis (a)).

    The processed event is dropped in transit — nondeterministically,
    up to ``k`` times per channel — and the Input-Device re-executes
    its processing window from scratch.  The loss counter ``fd_*``
    makes the budget part of the state, so verdicts are antitone in
    ``k`` (the edge's behaviors at ``k`` are a subset of those at
    ``k+1``).
    """
    if faults is None or faults.max_losses <= 0:
        return
    b.edge("Processing", "Processing",
           guard=(f"y >= {spec.delay_min} && "
                  f"{vars_.faults} < {faults.max_losses}"),
           update=f"{vars_.faults} = {vars_.faults} + 1, y = 0")


def _build_ifmi_interrupt(mc_channel: str, io_name: str,
                          spec: InputSpec, io_spec: IOSpec,
                          vars_: ChannelVars,
                          faults: FaultSpec | None = None) -> Automaton:
    """Fig. 5-(1) verbatim: Idle → Processing → Idle (two cases)."""
    cap = _capacity(io_spec)
    b = AutomatonBuilder(f"IFMI_{io_name}", clocks=["y"])
    b.location("Idle", initial=True)
    b.location("Processing", invariant=f"y <= {spec.delay_max}")
    b.edge("Idle", "Processing", sync=f"{mc_channel}?", update="y = 0")
    _loss_retry_edge(b, spec, vars_, faults)
    _enqueue_edges(b, "Processing", "Idle", spec.delay_min, cap, vars_)
    return b.build()


def _build_ifmi_polling(mc_channel: str, io_name: str,
                        spec: InputSpec, io_spec: IOSpec,
                        vars_: ChannelVars,
                        faults: FaultSpec | None = None) -> Automaton:
    """Polling variant: a latch sampled every ``polling_interval``.

    The environment's edge sets the latch at any time (received in
    both locations — the device never blocks the environment).  A poll
    finding the latch set moves to Processing; the processing window
    then ends with the Fig. 5-(1) enqueue pair.  A second edge before
    the latch is sampled sets the ``missed`` flag — the signal was
    overwritten, which Constraint 1 requires to be unreachable.

    With a loss budget the processing window may re-execute up to
    ``k`` times, and with jitter ``ε`` the poll cadence widens to
    ``[poll−ε, poll+ε]``; realizability then requires the whole retry
    budget ``(k+1)·delay_max`` to fit an earliest poll gap ``poll−ε``.
    """
    assert spec.polling_interval is not None
    poll = spec.polling_interval
    losses = faults.max_losses if faults is not None else 0
    eps = faults.jitter if faults is not None else 0
    if (losses + 1) * spec.delay_max > poll - eps:
        if losses or eps:
            raise TransformError(
                f"input {mc_channel!r}: the retry budget "
                f"({losses + 1} × delay_max {spec.delay_max}) exceeds "
                f"the earliest poll gap ({poll} − jitter {eps}); the "
                f"device would fall behind its own poll cadence")
        raise TransformError(
            f"input {mc_channel!r}: processing delay_max "
            f"({spec.delay_max}) exceeds the polling interval ({poll}); "
            f"the device would fall behind its own poll cadence")
    cap = _capacity(io_spec)
    invariant = f"p <= {poll + eps}" if eps else f"p <= {poll}"
    tick = f"p >= {poll - eps}" if eps else f"p == {poll}"
    b = AutomatonBuilder(f"IFMI_{io_name}", clocks=["p", "y"])
    b.location("Wait", invariant=invariant, initial=True)
    b.location("Processing", invariant=f"y <= {spec.delay_max}")
    for location in ("Wait", "Processing"):
        b.edge(location, location, sync=f"{mc_channel}?",
               guard=f"{vars_.latch} == 0",
               update=f"{vars_.latch} = 1")
        b.edge(location, location, sync=f"{mc_channel}?",
               guard=f"{vars_.latch} == 1",
               update=f"{vars_.missed} = 1")
    b.edge("Wait", "Processing",
           guard=f"{tick} && {vars_.latch} == 1",
           update=f"p = 0, y = 0, {vars_.latch} = 0")
    b.edge("Wait", "Wait",
           guard=f"{tick} && {vars_.latch} == 0",
           update="p = 0")
    _loss_retry_edge(b, spec, vars_, faults)
    _enqueue_edges(b, "Processing", "Wait", spec.delay_min, cap, vars_)
    return b.build()


# ----------------------------------------------------------------------
# IFOC
# ----------------------------------------------------------------------
def build_ifoc(mc_channel: str, io_name: str, spec: OutputSpec,
               io_spec: IOSpec, vars_: ChannelVars,
               faults: FaultSpec | None = None) -> Automaton:
    """The output interface automaton for one controlled variable."""
    if spec.mechanism is ReadMechanism.INTERRUPT:
        return _build_ifoc_event(mc_channel, io_name, spec, vars_)
    return _build_ifoc_polling(mc_channel, io_name, spec, io_spec, vars_,
                               faults)


def _build_ifoc_event(mc_channel: str, io_name: str, spec: OutputSpec,
                      vars_: ChannelVars) -> Automaton:
    """Fig. 5-(2): prompt pickup (urgent channel), process, actuate."""
    b = AutomatonBuilder(f"IFOC_{io_name}", clocks=["z"])
    b.location("Idle", initial=True)
    b.location("Busy", invariant=f"z <= {spec.delay_max}")
    b.edge("Idle", "Busy", guard=f"{vars_.count} > 0",
           sync=f"{pickup_channel(io_name)}!",
           update=f"z = 0, {vars_.count} = {vars_.count} - 1")
    b.edge("Busy", "Idle", guard=f"z >= {spec.delay_min}",
           sync=f"{mc_channel}!")
    return b.build()


def _build_ifoc_polling(mc_channel: str, io_name: str,
                        spec: OutputSpec, io_spec: IOSpec,
                        vars_: ChannelVars,
                        faults: FaultSpec | None = None) -> Automaton:
    """Polling pickup with committed drain of the remaining backlog.

    With jitter ``ε`` the poll cadence widens to ``[poll−ε, poll+ε]``
    and the full-transport drain must fit the earliest gap ``poll−ε``.
    """
    assert spec.polling_interval is not None
    poll = spec.polling_interval
    eps = faults.jitter if faults is not None else 0
    cap = _capacity(io_spec)
    if cap * spec.delay_max > poll - eps:
        if eps:
            raise TransformError(
                f"output {mc_channel!r}: draining a full transport "
                f"({cap} × delay_max {spec.delay_max}) exceeds the "
                f"earliest poll gap ({poll} − jitter {eps}); the "
                f"device would fall behind")
        raise TransformError(
            f"output {mc_channel!r}: draining a full transport "
            f"({cap} × delay_max {spec.delay_max}) exceeds the polling "
            f"interval ({poll}); the device would fall behind")
    invariant = f"q <= {poll + eps}" if eps else f"q <= {poll}"
    tick = f"q >= {poll - eps}" if eps else f"q == {poll}"
    b = AutomatonBuilder(f"IFOC_{io_name}", clocks=["q", "z"])
    b.location("Wait", invariant=invariant, initial=True)
    b.location("Busy", invariant=f"z <= {spec.delay_max}")
    b.location("Drain", committed=True)
    b.edge("Wait", "Busy",
           guard=f"{tick} && {vars_.count} > 0",
           update=f"q = 0, z = 0, {vars_.count} = {vars_.count} - 1")
    b.edge("Wait", "Wait",
           guard=f"{tick} && {vars_.count} == 0",
           update="q = 0")
    b.edge("Busy", "Drain", guard=f"z >= {spec.delay_min}",
           sync=f"{mc_channel}!")
    b.edge("Drain", "Busy", guard=f"{vars_.count} > 0",
           update=f"z = 0, {vars_.count} = {vars_.count} - 1")
    b.edge("Drain", "Wait", guard=f"{vars_.count} == 0")
    return b.build()
