"""Platform-independent model (Definition 2): ``PIM = M ‖ ENV``.

A :class:`PIM` wraps a two-automaton network and records which
automaton is the software (``M``, the code-generation source) and
which is the environment.  Its input/output channels — derived from
``M``'s receive/emit synchronizations — are the mc-boundary variables
every other part of the framework is keyed on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ta.model import Automaton, ModelError, Network

__all__ = ["PIM"]


@dataclass(frozen=True)
class PIM:
    """Definition 2: a software model composed with its environment."""

    network: Network
    controller: str = "M"
    environment: str = "ENV"

    def __post_init__(self) -> None:
        m = self.network.automaton(self.controller)  # raises if missing
        self.network.automaton(self.environment)
        if not m.edges:
            raise ModelError(
                f"controller automaton {self.controller!r} has no edges")

    # ------------------------------------------------------------------
    @property
    def m(self) -> Automaton:
        """The software automaton (code-generation source)."""
        return self.network.automaton(self.controller)

    @property
    def env(self) -> Automaton:
        """The environment automaton."""
        return self.network.automaton(self.environment)

    def input_channels(self) -> tuple[str, ...]:
        """Monitored variables: channels ``M`` receives on (``m``)."""
        return tuple(sorted(self.m.input_channels()))

    def output_channels(self) -> tuple[str, ...]:
        """Controlled variables: channels ``M`` emits on (``c``)."""
        return tuple(sorted(self.m.output_channels()))

    def internal_edges(self) -> list:
        """``M``'s unsynchronized edges (Constraint 4 cares)."""
        return [e for e in self.m.edges if e.sync is None]

    def describe(self) -> str:
        return (
            f"PIM {self.network.name}: controller={self.controller}, "
            f"environment={self.environment}, "
            f"inputs={list(self.input_channels())}, "
            f"outputs={list(self.output_channels())}")
