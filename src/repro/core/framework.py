"""End-to-end verification pipeline — the paper's framework (Theorem 1).

:class:`TimingVerificationFramework` strings the pieces together the
way Section VI does:

1. verify the PIM against ``P(Δ_mc)`` (model checking),
2. transform the PIM into the PSM for the chosen scheme,
3. verify the four boundedness constraints on the PSM,
4. derive the relaxed bound ``Δ'_mc`` (Lemmas 1–2),
5. verify ``PSM ⊨ P(Δ'_mc)`` — by Theorem 1, the implementation then
   satisfies ``P(Δ'_mc)`` too (assuming the platform is correctly
   described by the scheme, which testing validates);
6. also check whether the *original* deadline survives on the PSM
   (in the case study it does not: ``PSM ⊭ P(500)``).

The resulting :class:`VerificationReport` carries every verified
number Table I's upper row needs.

Beyond the paper, :meth:`TimingVerificationFramework.verify_portfolio`
runs the same pipeline over a whole *portfolio* of candidate schemes
(a :func:`repro.apps.schemes.scheme_grid` sweep), scheduled
concurrently over one shared worker pool — see
:mod:`repro.mc.portfolio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.constraints import ConstraintReport, check_all_constraints
from repro.core.delays import (
    DelayBounds,
    bounds_from_internal,
    internal_delay,
)
from repro.core.pim import PIM
from repro.core.psm import PSM
from repro.core.scheme import ImplementationScheme
from repro.core.transform import transform
from repro.mc.observers import (
    BoundedResponseResult,
    DelayBound,
    check_bounded_response,
)

__all__ = ["TimingVerificationFramework", "VerificationReport"]


@dataclass
class VerificationReport:
    """Everything the framework establishes for one (m, c) pair."""

    input_channel: str
    output_channel: str
    deadline_ms: int
    #: Step 1 — PIM ⊨ P(Δ_mc)?
    pim_result: BoundedResponseResult | None = None
    #: Step 3 — the four constraints (+ progress).
    constraints: ConstraintReport | None = None
    #: Step 4 — Lemma 1/2 bounds.
    bounds: DelayBounds | None = None
    #: Step 5 — PSM ⊨ P(Δ'_mc)?
    psm_relaxed_result: BoundedResponseResult | None = None
    #: Step 6 — PSM ⊨ P(Δ_mc)? (usually not, that is the point)
    psm_original_result: BoundedResponseResult | None = None
    #: Optional exact suprema measured on the PSM.
    symbolic: dict[str, DelayBound] = field(default_factory=dict)
    psm: PSM | None = None

    # ------------------------------------------------------------------
    @property
    def pim_holds(self) -> bool:
        return bool(self.pim_result and self.pim_result.holds)

    @property
    def constraints_hold(self) -> bool:
        return bool(self.constraints and self.constraints.all_hold)

    @property
    def relaxed_deadline_ms(self) -> int | None:
        return self.bounds.relaxed if self.bounds else None

    @property
    def implementation_guarantee(self) -> bool:
        """Theorem 1's conclusion for ``P(Δ'_mc)``."""
        return bool(self.constraints_hold and self.psm_relaxed_result
                    and self.psm_relaxed_result.holds)

    def summary(self) -> str:
        lines = [
            f"Timing verification for {self.input_channel} → "
            f"{self.output_channel}, Δ_mc = {self.deadline_ms}ms",
        ]
        if self.pim_result is not None:
            lines.append(f"  [1] PIM:  {self.pim_result.summary()}")
        if self.constraints is not None:
            status = "satisfied" if self.constraints.all_hold \
                else "VIOLATED"
            lines.append(f"  [3] constraints: {status}")
        if self.bounds is not None:
            lines.append(f"  [4] bounds: {self.bounds.summary()}")
        if self.psm_original_result is not None:
            lines.append(
                f"  [6] PSM vs original: "
                f"{self.psm_original_result.summary()}")
        if self.psm_relaxed_result is not None:
            lines.append(
                f"  [5] PSM vs relaxed: "
                f"{self.psm_relaxed_result.summary()}")
        if self.implementation_guarantee:
            lines.append(
                f"  ⇒ Theorem 1: Code(PIM)‖imp IS ⊨ "
                f"P({self.relaxed_deadline_ms})")
        for name, bound in self.symbolic.items():
            lines.append(f"      sup {name} = {bound}")
        return "\n".join(lines)


class TimingVerificationFramework:
    """Front door of the library: PIM + scheme + requirement → report.

    ``jobs`` selects the sharded parallel explorer for every model-
    checking step (``None`` keeps the sequential engine; results are
    identical either way).  ``abstraction`` selects the extrapolation
    operator for every step (``"extra_m"`` — the default, or
    ``"extra_lu"`` — same verdicts/bounds/sups, smaller zone graphs;
    ``None`` defers to ``set_abstraction``/``REPRO_ABSTRACTION``).
    """

    def __init__(self, *, max_states: int = 1_000_000,
                 jobs: int | None = None,
                 abstraction: str | None = None):
        self.max_states = max_states
        self.jobs = jobs
        self.abstraction = abstraction

    # ------------------------------------------------------------------
    def verify_pim(self, pim: PIM, input_channel: str,
                   output_channel: str,
                   deadline_ms: int) -> BoundedResponseResult:
        """Step 1: ``PIM ⊨ P(Δ_mc)``?"""
        return check_bounded_response(
            pim.network, input_channel, output_channel, deadline_ms,
            max_states=self.max_states, jobs=self.jobs,
            abstraction=self.abstraction)

    def transform(self, pim: PIM,
                  scheme: ImplementationScheme) -> PSM:
        """Step 2: construct the PSM (Section IV)."""
        return transform(pim, scheme)

    def check_constraints(self, psm: PSM, *,
                          min_interarrival_ms: int | None = None,
                          include_progress: bool = False
                          ) -> ConstraintReport:
        """Step 3: the four boundedness constraints (Section V)."""
        return check_all_constraints(
            psm, min_interarrival_ms=min_interarrival_ms,
            include_progress=include_progress,
            max_states=self.max_states, jobs=self.jobs,
            abstraction=self.abstraction)

    def derive_bounds(self, pim: PIM, scheme: ImplementationScheme,
                      input_channel: str,
                      output_channel: str) -> DelayBounds:
        """Step 4: Lemma 1 bounds + the PIM's internal sup (Lemma 2)."""
        internal = internal_delay(pim, input_channel, output_channel,
                                  max_states=self.max_states,
                                  jobs=self.jobs,
                                  abstraction=self.abstraction)
        return bounds_from_internal(scheme, input_channel,
                                    output_channel, internal)

    def verify_psm(self, psm: PSM, input_channel: str,
                   output_channel: str,
                   deadline_ms: int) -> BoundedResponseResult:
        """Steps 5/6: ``PSM ⊨ P(Δ)`` for any deadline."""
        return check_bounded_response(
            psm.network, input_channel, output_channel, deadline_ms,
            max_states=self.max_states, jobs=self.jobs,
            abstraction=self.abstraction)

    def verify_psm_deadlines(self, psm: PSM, input_channel: str,
                             output_channel: str,
                             deadlines_ms: list[int],
                             ) -> list[BoundedResponseResult]:
        """Steps 5+6 fused: every deadline from one shared sweep."""
        from repro.mc.queries import BoundedResponseQuery, check_many

        outcome = check_many(
            psm.network,
            [BoundedResponseQuery(input_channel, output_channel,
                                  deadline)
             for deadline in deadlines_ms],
            max_states=self.max_states, jobs=self.jobs,
            abstraction=self.abstraction)
        return list(outcome.results)

    def measure_psm(self, psm: PSM, input_channel: str,
                    output_channel: str) -> dict[str, DelayBound]:
        """Exact suprema on the PSM (diagnostics / Lemma-1 validation).

        The three sups share one multi-observer exploration; values
        are identical to the individual :func:`max_response_delay`
        runs in :mod:`repro.core.delays`.
        """
        from repro.mc.queries import ResponseSupQuery, check_many

        outcome = check_many(
            psm.network,
            [ResponseSupQuery(input_channel,
                              psm.io_name(input_channel)),
             ResponseSupQuery(psm.io_name(output_channel),
                              output_channel),
             ResponseSupQuery(input_channel, output_channel)],
            trace=False, max_states=self.max_states, jobs=self.jobs,
            abstraction=self.abstraction)
        input_sup, output_sup, mc_sup = outcome.results
        return {
            "Input-Delay": input_sup,
            "Output-Delay": output_sup,
            "M-C delay": mc_sup,
        }

    # ------------------------------------------------------------------
    def verify(self, pim: PIM, scheme: ImplementationScheme, *,
               input_channel: str, output_channel: str,
               deadline_ms: int,
               min_interarrival_ms: int | None = None,
               measure_suprema: bool = False,
               include_progress: bool = False) -> VerificationReport:
        """The full Section-VI pipeline in one call."""
        report = VerificationReport(
            input_channel=input_channel, output_channel=output_channel,
            deadline_ms=deadline_ms)
        report.pim_result = self.verify_pim(
            pim, input_channel, output_channel, deadline_ms)
        psm = self.transform(pim, scheme)
        report.psm = psm
        report.constraints = self.check_constraints(
            psm, min_interarrival_ms=min_interarrival_ms,
            include_progress=include_progress)
        report.bounds = self.derive_bounds(
            pim, scheme, input_channel, output_channel)
        # Steps 5 and 6 ask about the same (m, c) pair — one shared
        # sweep answers both deadlines.
        report.psm_original_result, report.psm_relaxed_result = \
            self.verify_psm_deadlines(
                psm, input_channel, output_channel,
                [deadline_ms, report.bounds.relaxed])
        if measure_suprema:
            report.symbolic = self.measure_psm(
                psm, input_channel, output_channel)
        return report

    # ------------------------------------------------------------------
    def verify_portfolio(self, pim: PIM,
                         schemes: Sequence[ImplementationScheme], *,
                         input_channel: str, output_channel: str,
                         deadline_ms: int,
                         min_interarrival_ms: int | None = None,
                         measure_suprema: bool = False,
                         include_progress: bool = False,
                         concurrency: int | None = None,
                         fused: bool = False,
                         executor: str | None = None,
                         reuse: bool = False,
                         prune_dominated: bool = False,
                         warm_start: bool = False,
                         on_result=None):
        """Step 7: verify a whole portfolio of candidate schemes.

        One :meth:`verify` pipeline per scheme, scheduled concurrently
        over a shared worker pool by
        :class:`repro.mc.portfolio.PortfolioVerifier` (``self.jobs``
        sets the pool width; results per scheme are bit-identical to
        calling :meth:`verify` one scheme at a time).
        ``executor="process"`` partitions the jobs across
        ``self.jobs`` worker *processes* instead of threads — true
        multi-core for the pure-Python reference backend (``None``
        defers to ``REPRO_EXECUTOR``, default thread).
        ``reuse=True`` answers schemes whose compiled PSM is
        canonically identical (up to semantically-inert buffer
        capacities) from a verdict memo instead of re-exploring —
        memoized rows are bit-identical to their own sweep;
        ``prune_dominated=True`` additionally derives Theorem-1
        verdicts for points dominated along the monotone poll/period
        axes from a verified harder neighbor (derived rows carry
        ``derived_from`` provenance and no state tallies);
        ``warm_start=True`` keeps one zone-interning table across the
        portfolio so neighboring sweeps share interned zones.
        ``on_result`` is called with each
        :class:`~repro.mc.portfolio.PortfolioResult` as it commits
        (completion order) — the streaming hook the service daemon
        bridges to its clients.
        Returns the job-ordered
        :class:`repro.mc.portfolio.PortfolioOutcome`;
        render it with
        :func:`repro.analysis.portfolio.render_portfolio`.
        """
        from repro.mc.portfolio import PortfolioVerifier

        verifier = PortfolioVerifier(
            jobs=self.jobs, executor=executor, concurrency=concurrency,
            max_states=self.max_states, fused=fused,
            abstraction=self.abstraction, reuse=reuse,
            prune_dominated=prune_dominated, warm_start=warm_start)
        return verifier.verify_schemes(
            pim, schemes, input_channel=input_channel,
            output_channel=output_channel, deadline_ms=deadline_ms,
            min_interarrival_ms=min_interarrival_ms,
            measure_suprema=measure_suprema,
            include_progress=include_progress,
            on_result=on_result)
