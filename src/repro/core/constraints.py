"""The four boundedness constraints of Section V.

Remark 1: ``Δ'_mc`` is not bounded for every implementation scheme.
The paper gives four constraints under which it is; each is decided
here by model checking the PSM (the paper's route) — reachability of
the bookkeeping flags the transformation planted:

1. **Detection of all input signals** — no ``miss_*`` flag reachable
   (a polled latch was overwritten before its sample), plus the
   analytic sub-check that each device's worst-case processing is
   faster than the environment's minimum inter-arrival time.
2. **No overflow of the input buffers** — no input ``ovf_*``/``lost_*``
   flag reachable.
3. **No overflow of the output buffers** — ditto for outputs
   (including the staging overflow inside EXEIO).
4. **No internal transition interference** — the ``code_drop`` flag is
   unreachable: the code never pops an input it cannot consume, i.e.
   MIO never moved past the accepting location between the enqueue and
   the read.

A fifth, implicit sanity check — the PSM composition neither deadlocks
nor timelocks — is exposed as :func:`check_progress` because a stuck
PSM would satisfy every safety property vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.delays import detection_bound
from repro.core.psm import PSM
from repro.mc.deadlock import find_deadlocks
from repro.mc.reachability import StateFormula, check_reachable

__all__ = [
    "ConstraintResult",
    "ConstraintReport",
    "check_constraint1",
    "check_constraint2",
    "check_constraint3",
    "check_constraint4",
    "check_progress",
    "check_all_constraints",
]


@dataclass
class ConstraintResult:
    """Outcome of one constraint check."""

    constraint: str
    holds: bool
    detail: str
    counterexample: list[str] | None = None

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        status = "SATISFIED" if self.holds else "VIOLATED"
        return f"{self.constraint}: {status} — {self.detail}"


def _flags_reachable(psm: PSM, flags: list[str], what: str, *,
                     max_states: int,
                     jobs: int | None = None,
                     abstraction: str | None = None) -> ConstraintResult:
    """Shared machinery: is any of the given flags settable?"""
    flags = [f for f in flags if f]
    if not flags:
        return ConstraintResult(
            constraint=what, holds=True,
            detail="no applicable flags (mechanism not used)")
    condition = " || ".join(f"{flag} == 1" for flag in flags)
    reach = check_reachable(psm.network, StateFormula(data=condition),
                            max_states=max_states, jobs=jobs,
                            abstraction=abstraction)
    if reach.reachable:
        return ConstraintResult(
            constraint=what, holds=False,
            detail=f"reachable: {condition} (witness: {reach.witness})",
            counterexample=reach.trace)
    return ConstraintResult(
        constraint=what, holds=True,
        detail=f"A[] !({condition}) verified "
               f"({reach.visited} states)")


def check_constraint1(psm: PSM, *,
                      min_interarrival_ms: int | None = None,
                      max_states: int = 1_000_000) -> ConstraintResult:
    """Constraint 1: every environmental input signal is detected."""
    result = _flags_reachable(
        psm, psm.miss_flags(),
        "Constraint 1 (detection of all input signals)",
        max_states=max_states)
    if not result.holds or min_interarrival_ms is None:
        return result
    # Analytic half: processing faster than the inter-arrival time.
    slow = []
    for channel in psm.pim.input_channels():
        if detection_bound(psm.scheme, channel) >= min_interarrival_ms:
            slow.append(channel)
    if slow:
        return ConstraintResult(
            constraint=result.constraint, holds=False,
            detail=f"device(s) {slow} slower than the minimum "
                   f"inter-arrival time {min_interarrival_ms}ms")
    return ConstraintResult(
        constraint=result.constraint, holds=True,
        detail=result.detail + "; processing beats inter-arrival time")


def check_constraint2(psm: PSM, *,
                      max_states: int = 1_000_000) -> ConstraintResult:
    """Constraint 2: the input buffers never overflow."""
    flags = [vars_.overflow for vars_ in psm.input_vars.values()]
    return _flags_reachable(
        psm, flags, "Constraint 2 (no input-buffer overflow)",
        max_states=max_states)


def check_constraint3(psm: PSM, *,
                      max_states: int = 1_000_000) -> ConstraintResult:
    """Constraint 3: the output buffers never overflow."""
    flags = [vars_.overflow for vars_ in psm.output_vars.values()]
    return _flags_reachable(
        psm, flags, "Constraint 3 (no output-buffer overflow)",
        max_states=max_states)


def check_constraint4(psm: PSM, *,
                      max_states: int = 1_000_000) -> ConstraintResult:
    """Constraint 4: the code never drops a pending input."""
    return _flags_reachable(
        psm, [psm.code_drop_flag],
        "Constraint 4 (no internal-transition interference)",
        max_states=max_states)


def check_progress(psm: PSM, *,
                   max_states: int = 1_000_000) -> ConstraintResult:
    """Sanity: the PSM composition never gets stuck."""
    report = find_deadlocks(psm.network, max_states=max_states)
    if report.deadlock_free:
        return ConstraintResult(
            constraint="Progress (no deadlock/timelock)", holds=True,
            detail=f"deadlock-free ({report.visited} states)")
    return ConstraintResult(
        constraint="Progress (no deadlock/timelock)", holds=False,
        detail=report.summary())


@dataclass
class ConstraintReport:
    """All Section-V constraints for one PSM."""

    results: list[ConstraintResult] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.results)

    def summary(self) -> str:
        lines = [r.summary() for r in self.results]
        verdict = ("all constraints satisfied — Δ'_mc is bounded "
                   "(Lemma 1 applies)"
                   if self.all_hold else
                   "constraint violation — Δ'_mc may be unbounded "
                   "(Remark 1)")
        return "\n".join(lines + [verdict])


def check_all_constraints(psm: PSM, *,
                          min_interarrival_ms: int | None = None,
                          include_progress: bool = False,
                          single_pass: bool = True,
                          max_states: int = 1_000_000,
                          jobs: int | None = None,
                          abstraction: str | None = None,
                          ) -> ConstraintReport:
    """Run Constraints 1–4 (plus the optional progress sanity check).

    With ``single_pass`` (the default) one full exploration evaluates
    all four flag sets at once — the flags are monotone, so "ever set
    in a reachable state" is exactly reachability.  Set it to False to
    get per-constraint counterexample traces instead.
    """
    report = ConstraintReport()
    if include_progress:
        report.results.append(check_progress(psm, max_states=max_states))
    if not single_pass:
        report.results.append(check_constraint1(
            psm, min_interarrival_ms=min_interarrival_ms,
            max_states=max_states))
        report.results.append(check_constraint2(psm,
                                                max_states=max_states))
        report.results.append(check_constraint3(psm,
                                                max_states=max_states))
        report.results.append(check_constraint4(psm,
                                                max_states=max_states))
        return report
    report.results.extend(_single_pass_constraints(
        psm, min_interarrival_ms=min_interarrival_ms,
        max_states=max_states, jobs=jobs, abstraction=abstraction))
    return report


def _single_pass_constraints(psm: PSM, *,
                             min_interarrival_ms: int | None,
                             max_states: int,
                             jobs: int | None = None,
                             abstraction: str | None = None,
                             ) -> list[ConstraintResult]:
    """One exploration deciding Constraints 1–4 together."""
    from repro.mc.parallel import make_explorer

    groups: dict[str, list[str]] = {
        "Constraint 1 (detection of all input signals)":
            psm.miss_flags(),
        "Constraint 2 (no input-buffer overflow)":
            [v.overflow for v in psm.input_vars.values()],
        "Constraint 3 (no output-buffer overflow)":
            [v.overflow for v in psm.output_vars.values()],
        "Constraint 4 (no internal-transition interference)":
            [psm.code_drop_flag],
    }
    explorer = make_explorer(psm.network, jobs=jobs,
                             max_states=max_states,
                             abstraction=abstraction)
    compiled = explorer.compiled
    positions = {
        flag: compiled.var_pos(flag)
        for flags in groups.values() for flag in flags if flag
    }
    witnesses: dict[str, str] = {}

    def visit(state) -> None:
        for flag, pos in positions.items():
            if flag not in witnesses and state.vals[pos] == 1:
                witnesses[flag] = compiled.state_description(state)

    result = explorer.explore(visit=visit)

    out: list[ConstraintResult] = []
    for constraint, flags in groups.items():
        flags = [f for f in flags if f]
        if not flags:
            out.append(ConstraintResult(
                constraint=constraint, holds=True,
                detail="no applicable flags (mechanism not used)"))
            continue
        hit = [f for f in flags if f in witnesses]
        if hit:
            out.append(ConstraintResult(
                constraint=constraint, holds=False,
                detail=f"flag(s) {hit} reachable "
                       f"(e.g. {witnesses[hit[0]]})"))
        else:
            out.append(ConstraintResult(
                constraint=constraint, holds=True,
                detail=f"flags {flags} unreachable "
                       f"({result.visited} states)"))
    # Constraint 1's analytic half.
    if min_interarrival_ms is not None and out[0].holds:
        slow = [ch for ch in psm.pim.input_channels()
                if detection_bound(psm.scheme, ch)
                >= min_interarrival_ms]
        if slow:
            out[0] = ConstraintResult(
                constraint=out[0].constraint, holds=False,
                detail=f"device(s) {slow} slower than the minimum "
                       f"inter-arrival time {min_interarrival_ms}ms")
    return out
