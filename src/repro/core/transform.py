"""The modular PIM → PSM transformation — Section IV.

Given a :class:`~repro.core.pim.PIM` and an
:class:`~repro.core.scheme.ImplementationScheme`, build the
platform-specific model

``PSM = MIO ‖ IFMI_1..k ‖ IFOC_1..j ‖ EXEIO ‖ ENVMC``

following the paper's three construction steps:

1. **MIO and ENVMC** (Section IV(1)): MIO is ``M`` with its mc-boundary
   synchronizations renamed to io-boundary twins (``m_X → i_X``,
   ``c_Y → o_Y``); nothing else changes — the transformation is
   *modular*.  ENVMC is ``ENV`` verbatim.  Two mechanical additions
   make the composition analyzable: MIO's clocks are hoisted to
   network globals (so EXEIO's complementary transitions *could*
   reference them) and every MIO edge maintains a ``mio_loc`` shadow
   variable encoding its current location — the standard UPPAAL
   realization of the paper's "MIO is in a location that can read the
   input" guard.
2. **IFMI / IFOC** (Section IV(2), Fig. 5): one interface automaton
   per boundary channel, built by :mod:`repro.core.interfaces`
   according to the channel's mechanism (interrupt/polling ×
   buffer/shared).
3. **EXEIO** (Section IV(3), Fig. 6): built by
   :mod:`repro.core.execution` from the invocation mechanism, the
   read policies and MIO's acceptance conditions.

The result is a plain :class:`~repro.ta.model.Network` (validated),
wrapped in a :class:`~repro.core.psm.PSM` that records the component
roles and bookkeeping variable names for the Section-V analyses.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.execution import (
    InputEntry,
    OutputEntry,
    accept_expression,
    build_exeio,
)
from repro.core.interfaces import (
    TransformError,
    build_ifmi,
    build_ifoc,
    effective_capacity,
    input_channel_vars,
    output_channel_vars,
    pickup_channel,
)
from repro.core.pim import PIM
from repro.core.psm import PSM, ChannelVars
from repro.core.scheme import ImplementationScheme, ReadMechanism
from repro.ta.builder import AutomatonBuilder, NetworkBuilder
from repro.ta.clocks import Update
from repro.ta.expr import Const
from repro.ta.model import Automaton
from repro.ta.clocks import Assignment
from repro.ta.rename import (
    boundary_rename_map,
    mc_to_io_name,
    rename_channels,
    rename_clocks,
)

__all__ = ["transform", "TransformError", "MIO_NAME", "ENVMC_NAME",
           "EXEIO_NAME"]

MIO_NAME = "MIO"
ENVMC_NAME = "ENVMC"
EXEIO_NAME = "EXEIO"
URG_NAME = "URG"
MIO_LOC_VAR = "mio_loc"
CODE_DROP_FLAG = "code_drop"


def _build_mio(pim: PIM) -> tuple[Automaton, dict[str, str]]:
    """Step 1: rename boundaries, hoist clocks, add the shadow var."""
    m = pim.m
    channel_map = boundary_rename_map(m.input_channels(),
                                      m.output_channels())
    mio = rename_channels(m, channel_map, new_name=MIO_NAME)
    clock_map = {clock: f"mio_{clock}" for clock in m.clocks}
    mio = rename_clocks(mio, clock_map)

    loc_index = {loc.name: i for i, loc in enumerate(mio.locations)}
    shadowed_edges = []
    for edge in mio.edges:
        shadow = Assignment(var=MIO_LOC_VAR,
                            expr=Const(loc_index[edge.target]))
        shadowed_edges.append(replace(
            edge, update=Update(actions=edge.update.actions + (shadow,))))
    mio = replace(mio, edges=tuple(shadowed_edges))
    return mio, clock_map


def transform(pim: PIM, scheme: ImplementationScheme) -> PSM:
    """Transform a PIM into the PSM for ``scheme`` (Section IV)."""
    scheme.validate()
    input_channels = pim.input_channels()
    output_channels = pim.output_channels()
    scheme.covers(input_channels, output_channels)
    if pim.internal_edges():
        # Constraint 4 precondition; surfaced early with a clear story.
        raise TransformError(
            f"controller {pim.controller!r} has internal (unsynchronized)"
            f" edges {[str(e) for e in pim.internal_edges()]}; the "
            f"transformation requires io-visible behavior only "
            f"(Constraint 4). Model internal steps as committed "
            f"locations or fold them into synchronized edges.")

    mio, clock_map = _build_mio(pim)
    io_names = {ch: mc_to_io_name(ch)
                for ch in (*input_channels, *output_channels)}

    # ---- interface automata and their bookkeeping variables ----------
    faults = scheme.faults
    input_vars: dict[str, ChannelVars] = {}
    ifmi: dict[str, Automaton] = {}
    for channel in input_channels:
        spec = scheme.input_spec(channel)
        io_spec = scheme.io_input_spec(channel)
        vars_ = input_channel_vars(io_names[channel], spec, io_spec,
                                   faults)
        input_vars[channel] = vars_
        ifmi[channel] = build_ifmi(channel, io_names[channel], spec,
                                   io_spec, vars_, faults)

    output_vars: dict[str, ChannelVars] = {}
    ifoc: dict[str, Automaton] = {}
    event_outputs: list[str] = []
    for channel in output_channels:
        spec = scheme.output_spec(channel)
        io_spec = scheme.io_output_spec(channel)
        vars_ = output_channel_vars(io_names[channel], io_spec)
        output_vars[channel] = vars_
        ifoc[channel] = build_ifoc(channel, io_names[channel], spec,
                                   io_spec, vars_, faults)
        if spec.mechanism is ReadMechanism.INTERRUPT:
            event_outputs.append(channel)

    # ---- EXEIO ---------------------------------------------------------
    input_entries = []
    for channel in input_channels:
        io_spec = scheme.io_input_spec(channel)
        io_name = io_names[channel]
        entry = InputEntry(
            mc_channel=channel,
            io_name=io_name,
            capacity=effective_capacity(io_spec),
            read_policy=io_spec.read_policy,
            vars=input_vars[channel],
            did_flag=f"did_{io_name}",
            accept=accept_expression(mio, io_name, MIO_LOC_VAR),
        )
        input_entries.append(entry)
    output_entries = [
        OutputEntry(
            mc_channel=channel,
            io_name=io_names[channel],
            capacity=effective_capacity(scheme.io_output_spec(channel)),
            vars=output_vars[channel],
        )
        for channel in output_channels
    ]
    exeio_parts = build_exeio(scheme, input_entries, output_entries,
                              code_drop_flag=CODE_DROP_FLAG,
                              name=EXEIO_NAME)

    # ---- assemble the network ------------------------------------------
    net = NetworkBuilder(f"{pim.network.name}_psm",
                         constants=dict(pim.network.constants))
    for channel in (*input_channels, *output_channels):
        net.channel(channel)
        net.channel(io_names[channel])
    for channel in event_outputs:
        net.channel(pickup_channel(io_names[channel]), urgent=True)
    for urgent in exeio_parts.urgent_channels:
        net.channel(urgent, urgent=True)
    for extra_channel in exeio_parts.extra_channels:
        net.channel(extra_channel)

    for global_clock in clock_map.values():
        net.global_clock(global_clock)

    mio_initial_idx = next(
        i for i, loc in enumerate(mio.locations)
        if loc.name == mio.initial)
    net.int_var(MIO_LOC_VAR, init=mio_initial_idx, lo=0,
                hi=len(mio.locations) - 1)
    net.bool_var(CODE_DROP_FLAG)
    for name, hi in exeio_parts.int_vars:
        net.int_var(name, init=0, lo=0, hi=hi)
    for channel in input_channels:
        vars_ = input_vars[channel]
        cap = effective_capacity(scheme.io_input_spec(channel))
        net.int_var(vars_.count, init=0, lo=0, hi=cap)
        net.bool_var(vars_.overflow)
        if vars_.latch:
            net.bool_var(vars_.latch)
        if vars_.missed:
            net.bool_var(vars_.missed)
        if vars_.faults:
            net.int_var(vars_.faults, init=0, lo=0,
                        hi=faults.max_losses)
        net.bool_var(f"did_{io_names[channel]}")
    for channel in output_channels:
        vars_ = output_vars[channel]
        cap = effective_capacity(scheme.io_output_spec(channel))
        net.int_var(vars_.count, init=0, lo=0, hi=cap)
        net.int_var(vars_.staged, init=0, lo=0, hi=cap)
        net.bool_var(vars_.overflow)

    envmc = pim.env.with_name(ENVMC_NAME)
    net.add_automaton(mio)
    for channel in input_channels:
        net.add_automaton(ifmi[channel])
    for channel in output_channels:
        net.add_automaton(ifoc[channel])
    net.add_automaton(exeio_parts.automaton)
    for extra in exeio_parts.extra_automata:
        net.add_automaton(extra)
    if event_outputs:
        net.add_automaton(_build_urg(
            [pickup_channel(io_names[ch]) for ch in event_outputs]))
    net.add_automaton(envmc)

    network = net.build()
    extras = {extra.name: extra.name
              for extra in exeio_parts.extra_automata
              if extra.name != f"{EXEIO_NAME}_TRIG"}
    return PSM(
        network=network,
        pim=pim,
        scheme=scheme,
        mio=MIO_NAME,
        envmc=ENVMC_NAME,
        exeio=EXEIO_NAME,
        ifmi={ch: ifmi[ch].name for ch in input_channels},
        ifoc={ch: ifoc[ch].name for ch in output_channels},
        io_names=io_names,
        input_vars=input_vars,
        output_vars=output_vars,
        code_drop_flag=CODE_DROP_FLAG,
        mio_loc_var=MIO_LOC_VAR,
        extras=extras,
    )


def _build_urg(pickup_channels: list[str]) -> Automaton:
    """Receiver for the urgent pickup channels of event-driven IFOCs."""
    b = AutomatonBuilder(URG_NAME)
    b.location("Run", initial=True)
    for channel in pickup_channels:
        b.edge("Run", "Run", sync=f"{channel}?")
    return b.build()
