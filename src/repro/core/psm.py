"""Platform-specific model (Definition 3) and its component map.

``PSM = MIO ‖ IFMI_1..k ‖ IFOC_1..j ‖ EXEIO ‖ ENVMC`` — the network
produced by the transformation, plus everything downstream analyses
need to navigate it: which automaton plays which role, how mc-boundary
channels map to their io-boundary twins, and the names of the
bookkeeping variables (buffer counters, overflow/miss/drop flags) that
the four constraints of Section V are phrased over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.pim import PIM
from repro.core.scheme import ImplementationScheme
from repro.ta.model import Network

__all__ = ["PSM", "ChannelVars"]


@dataclass(frozen=True)
class ChannelVars:
    """Bookkeeping variable names for one boundary channel."""

    #: Buffer occupancy counter (``cnt_i_X`` / ``cnt_o_Y``).
    count: str
    #: Overflow flag (buffer) or overwrite flag (shared variable).
    overflow: str
    #: Staged-output counter (outputs only, ``""`` for inputs).
    staged: str = ""
    #: Latch state (polled inputs only, ``""`` otherwise).
    latch: str = ""
    #: Missed/overwritten-signal flag (polled inputs only).
    missed: str = ""
    #: Delivery-loss counter (inputs with a fault budget, ``""``
    #: otherwise): how many deliveries the lossy channel has dropped.
    faults: str = ""


@dataclass(frozen=True)
class PSM:
    """Definition 3 with component metadata."""

    network: Network
    pim: PIM
    scheme: ImplementationScheme
    #: Automaton names by role.
    mio: str
    envmc: str
    exeio: str
    ifmi: Mapping[str, str]  # mc input channel -> automaton name
    ifoc: Mapping[str, str]  # mc output channel -> automaton name
    #: mc-boundary channel -> io-boundary channel (m_X -> i_X etc.).
    io_names: Mapping[str, str]
    #: Per-channel bookkeeping variables (keyed by mc channel name).
    input_vars: Mapping[str, ChannelVars]
    output_vars: Mapping[str, ChannelVars]
    #: Flag set when the code pops an input it cannot consume.
    code_drop_flag: str = "code_drop"
    #: Shadow variable tracking MIO's current location index.
    mio_loc_var: str = "mio_loc"
    extras: Mapping[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def io_name(self, mc_channel: str) -> str:
        """The io-boundary twin of an mc-boundary channel."""
        return self.io_names[mc_channel]

    def components(self) -> list[tuple[str, str]]:
        """(role, automaton-name) pairs in Definition-3 order."""
        pairs = [("MIO", self.mio)]
        pairs += [(f"IFMI[{ch}]", name)
                  for ch, name in sorted(self.ifmi.items())]
        pairs += [(f"IFOC[{ch}]", name)
                  for ch, name in sorted(self.ifoc.items())]
        pairs += [("EXEIO", self.exeio), ("ENVMC", self.envmc)]
        return pairs

    def overflow_flags(self) -> list[str]:
        """All buffer overflow/overwrite flags (Constraints 2–3)."""
        flags = [vars_.overflow for vars_ in self.input_vars.values()]
        flags += [vars_.overflow for vars_ in self.output_vars.values()]
        return flags

    def miss_flags(self) -> list[str]:
        """Missed-input flags (Constraint 1)."""
        return [vars_.missed for vars_ in self.input_vars.values()
                if vars_.missed]

    def describe(self) -> str:
        lines = [f"PSM {self.network.name} "
                 f"(scheme {self.scheme.name}):"]
        for role, name in self.components():
            auto = self.network.automaton(name)
            lines.append(
                f"  {role:<22} = {name} "
                f"({len(auto.locations)} locations, "
                f"{len(auto.edges)} edges)")
        return "\n".join(lines)
