"""Delay-bound analysis — Section V (Lemmas 1 and 2).

Two independent routes to the paper's bounds, which the test suite
cross-checks against each other:

* **Analytic (Lemma 1)** — closed-form worst cases from the scheme's
  parameters.  For an input read under periodic invocation::

      Δ̄_mi = detection + delivery-wait
           = (polling_interval +) delay_max + period

  and for an output::

      Δ̄_oc = wcet + (polling_interval +) delay_max

  (the ``wcet`` term is the staging window: outputs become visible to
  the Output-Device when the invocation completes).  Aperiodic
  invocation replaces ``period`` with ``latency_max +
  min_separation``.

* **Symbolic (model checking)** — exact suprema measured on the PSM
  with :func:`repro.mc.max_response_delay` (``m_X → i_X`` for the
  Input-Delay, ``o_Y → c_Y`` for the Output-Delay).  Lemma 1 is sound
  iff analytic ≥ symbolic, which the property tests assert.

**Lemma 2** combines them: ``Δ'_mc = Δ̄_mi + Δ̄_oc + Δ_io-internal``,
where the internal delay is the PIM's own m→c supremum (the PIM has no
platform, so its response delay *is* the internal processing delay).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pim import PIM
from repro.core.psm import PSM
from repro.core.scheme import ImplementationScheme, InvocationKind
from repro.mc.observers import DelayBound, max_response_delay

__all__ = [
    "DelayBounds",
    "analytic_input_delay_bound",
    "analytic_output_delay_bound",
    "bounds_from_internal",
    "compute_bound",
    "detection_bound",
    "pickup_bound",
    "relaxed_deadline",
    "start_delay_bound",
    "symbolic_input_delay",
    "symbolic_output_delay",
    "symbolic_mc_delay",
    "internal_delay",
]


def detection_bound(scheme: ImplementationScheme, channel: str) -> int:
    """Worst-case sense-to-ready latency of one input, under faults.

    Each in-transit loss re-executes the processing window (fault axis
    (a): ``+ k·delay_max``) and jitter lets a poll gap stretch to
    ``polling_interval + ε`` (axis (c)).  With faults disabled this is
    exactly ``InputSpec.worst_case_detection``.
    """
    spec = scheme.input_spec(channel)
    faults = scheme.faults
    detection = spec.worst_case_detection()
    detection += faults.max_losses * spec.delay_max
    if spec.polling_interval is not None:
        detection += faults.jitter
    return detection


def start_delay_bound(scheme: ImplementationScheme) -> int:
    """Worst 'input ready' → 'code starts' wait, under jitter.

    A drifting periodic tick may arrive ``ε`` late; the aperiodic
    path has no platform clock to drift.
    """
    inv = scheme.invocation
    delay = inv.worst_case_start_delay()
    if inv.kind in (InvocationKind.PERIODIC, InvocationKind.PREEMPTIVE):
        delay += scheme.faults.jitter
    return delay


def compute_bound(scheme: ImplementationScheme) -> int:
    """Worst-case busy time of one logical invocation, under faults.

    Replication serializes up to ``worst_case_rounds`` execution
    rounds before the voter's quorum is certain (axis (b));
    preemption stretches the response by the interference budget
    (axis (d)).  Fault-free this is exactly the wcet.
    """
    inv = scheme.invocation
    if scheme.faults.replicas > 1:
        return scheme.faults.worst_case_rounds() * inv.wcet
    return inv.worst_case_compute()


def pickup_bound(scheme: ImplementationScheme, channel: str) -> int:
    """Worst-case write-to-actuation latency, under jitter."""
    spec = scheme.output_spec(channel)
    pickup = spec.worst_case_pickup()
    if spec.polling_interval is not None:
        pickup += scheme.faults.jitter
    return pickup


def analytic_input_delay_bound(scheme: ImplementationScheme,
                               channel: str) -> int:
    """Lemma 1(1): worst-case Input-Delay ``Δ̄_mi`` for one channel."""
    return detection_bound(scheme, channel) + start_delay_bound(scheme)


def analytic_output_delay_bound(scheme: ImplementationScheme,
                                channel: str) -> int:
    """Lemma 1(2): worst-case Output-Delay ``Δ̄_oc`` for one channel."""
    return compute_bound(scheme) + pickup_bound(scheme, channel)


def relaxed_deadline(input_bound: int, output_bound: int,
                     internal_bound: int) -> int:
    """Lemma 2: ``Δ'_mc = Δ̄_mi + Δ̄_oc + Δ_io-internal``."""
    return input_bound + output_bound + internal_bound


# ----------------------------------------------------------------------
# Symbolic (model-checked) counterparts
# ----------------------------------------------------------------------
def internal_delay(pim: PIM, input_channel: str, output_channel: str,
                   *, max_states: int = 1_000_000,
                   jobs: int | None = None,
                   abstraction: str | None = None) -> DelayBound:
    """``Δ_io-internal``: the PIM's own m→c supremum."""
    return max_response_delay(pim.network, input_channel, output_channel,
                              max_states=max_states, jobs=jobs,
                              abstraction=abstraction)


def symbolic_input_delay(psm: PSM, channel: str, *,
                         max_states: int = 1_000_000) -> DelayBound:
    """Exact Input-Delay sup on the PSM: ``m_X!`` → ``i_X!``."""
    return max_response_delay(psm.network, channel, psm.io_name(channel),
                              max_states=max_states)


def symbolic_output_delay(psm: PSM, channel: str, *,
                          max_states: int = 1_000_000) -> DelayBound:
    """Exact Output-Delay sup on the PSM: ``o_Y!`` → ``c_Y!``."""
    return max_response_delay(psm.network, psm.io_name(channel), channel,
                              max_states=max_states)


def symbolic_mc_delay(psm: PSM, input_channel: str, output_channel: str,
                      *, max_states: int = 1_000_000) -> DelayBound:
    """Exact M-C sup on the PSM: ``m_X!`` → ``c_Y!``."""
    return max_response_delay(psm.network, input_channel, output_channel,
                              max_states=max_states)


@dataclass(frozen=True)
class DelayBounds:
    """Everything Section V derives for one (m, c) pair."""

    input_channel: str
    output_channel: str
    #: Lemma 1 analytic bounds (ms).
    input_bound: int
    output_bound: int
    #: PIM-internal processing bound (ms).
    internal_bound: int

    @property
    def relaxed(self) -> int:
        """Lemma 2's ``Δ'_mc``."""
        return relaxed_deadline(self.input_bound, self.output_bound,
                                self.internal_bound)

    def summary(self) -> str:
        return (f"Δ̄_mi={self.input_bound}ms + "
                f"Δ̄_oc={self.output_bound}ms + "
                f"Δ_internal={self.internal_bound}ms "
                f"→ Δ'_mc={self.relaxed}ms")


def bounds_from_internal(scheme: ImplementationScheme,
                         input_channel: str, output_channel: str,
                         internal: DelayBound) -> DelayBounds:
    """Assemble the Lemma-2 package from a *precomputed* internal sup.

    The single assembly point shared by
    :meth:`repro.core.framework.TimingVerificationFramework.derive_bounds`
    and the portfolio verifier (which caches the scheme-independent
    internal sup across jobs) — so the two pipelines cannot drift on
    how Lemma-1 terms combine.
    """
    if not internal.bounded:
        raise ValueError(
            f"internal {input_channel}→{output_channel} delay is "
            f"unbounded (Remark 1)")
    return DelayBounds(
        input_channel=input_channel,
        output_channel=output_channel,
        input_bound=analytic_input_delay_bound(scheme, input_channel),
        output_bound=analytic_output_delay_bound(scheme, output_channel),
        internal_bound=internal.sup,
    )


def derive_bounds(pim: PIM, scheme: ImplementationScheme,
                  input_channel: str, output_channel: str, *,
                  max_states: int = 1_000_000) -> DelayBounds:
    """Lemma 1 + the PIM's internal sup, packaged for Lemma 2."""
    internal = internal_delay(pim, input_channel, output_channel,
                              max_states=max_states)
    return bounds_from_internal(scheme, input_channel, output_channel,
                                internal)
