"""Reference interpreter for a single controller automaton.

Executes a :class:`~repro.ta.model.Automaton` under the generated-code
semantics documented in :mod:`repro.codegen.runtime`.  The separately
*generated* Python source (:mod:`repro.codegen.generator`) is
property-tested equivalent to this interpreter — the same pairing of
"reference semantics vs generated artifact" that gives model-based
implementation its assurance story.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.codegen.runtime import StepResult, take_first
from repro.ta.clocks import Assignment, ClockCopy, ClockReset
from repro.ta.model import Automaton, ModelError

__all__ = ["AutomatonInterpreter"]

_MAX_FIRINGS_PER_STEP = 256


class AutomatonInterpreter:
    """Concrete run-to-completion execution of one automaton."""

    def __init__(self, automaton: Automaton,
                 constants: Mapping[str, int] | None = None,
                 variables: Mapping[str, int] | None = None):
        self.automaton = automaton
        self.constants = dict(constants or {})
        self._initial_vars = dict(variables or {})
        self._edges_by_loc = {
            loc.name: automaton.edges_from(loc.name)
            for loc in automaton.locations
        }
        self._loc: str = automaton.initial
        self._reset_time: dict[str, float] = {}
        self.variables: dict[str, int] = {}
        self.reset(0.0)

    # ------------------------------------------------------------------
    def reset(self, now: float) -> None:
        self._loc = self.automaton.initial
        self._reset_time = {clock: now for clock in self.automaton.clocks}
        self.variables = dict(self._initial_vars)

    @property
    def location(self) -> str:
        return self._loc

    def clock_value(self, clock: str, now: float) -> float:
        return now - self._reset_time[clock]

    # ------------------------------------------------------------------
    def _env(self) -> dict[str, int]:
        env = dict(self.constants)
        env.update(self.variables)
        return env

    def _guard_holds(self, edge, now: float) -> bool:
        clock_values = {clock: now - self._reset_time[clock]
                        for clock in self.automaton.clocks}
        for atom in edge.guard.clock_constraints:
            if not atom.holds(clock_values):
                return False
        return edge.guard.data.eval(self._env()) != 0

    def _apply_update(self, edge, now: float) -> None:
        for action in edge.update.actions:
            if isinstance(action, ClockReset):
                # x := v means the clock shows v at this instant.
                self._reset_time[action.clock] = now - action.value
            elif isinstance(action, ClockCopy):
                self._reset_time[action.clock] = \
                    self._reset_time[action.source]
            elif isinstance(action, Assignment):
                env = self._env()
                self.variables[action.var] = action.expr.eval(env)

    # ------------------------------------------------------------------
    def step(self, now: float, inputs: Sequence[str]) -> StepResult:
        """One invocation: fire edges until quiescent."""
        pending = list(inputs)
        result = StepResult()
        for _ in range(_MAX_FIRINGS_PER_STEP):
            fired_edge = None
            for edge in self._edges_by_loc[self._loc]:
                if edge.sync is None:
                    if self._guard_holds(edge, now):
                        fired_edge = edge
                        break
                elif edge.sync.is_emit:
                    if self._guard_holds(edge, now):
                        fired_edge = edge
                        result.outputs.append(edge.sync.channel)
                        break
                else:  # input edge
                    if edge.sync.channel in pending \
                            and self._guard_holds(edge, now):
                        take_first(pending, edge.sync.channel)
                        result.consumed.append(edge.sync.channel)
                        fired_edge = edge
                        break
            if fired_edge is None:
                break
            self._apply_update(fired_edge, now)
            self._loc = fired_edge.target
            result.fired += 1
        else:
            raise ModelError(
                f"automaton {self.automaton.name!r}: more than "
                f"{_MAX_FIRINGS_PER_STEP} firings in one invocation — "
                f"livelock in the generated-code semantics")
        result.dropped = pending
        return result
