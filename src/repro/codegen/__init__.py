"""Code generation from verified models (the TIMES role in the paper)."""

from repro.codegen.generator import (
    build_controller,
    compile_controller,
    generate_source,
)
from repro.codegen.interpreter import AutomatonInterpreter
from repro.codegen.runtime import Controller, StepResult, take_first

__all__ = [
    "AutomatonInterpreter",
    "Controller",
    "StepResult",
    "build_controller",
    "compile_controller",
    "generate_source",
    "take_first",
]
