"""Runtime interface of generated platform-independent code.

Code generated from a verified model (by TIMES in the paper, by
:mod:`repro.codegen.generator` here) interacts with a platform through
exactly the four steps listed in Section II-A:

1. wait to be invoked,
2. read inputs,
3. compute transitions (using the inputs and the clock values),
4. write outputs.

The platform drives steps 1/2/4; the controller implements step 3 via
:meth:`Controller.step`, a *run-to-completion* micro-loop: starting
from the current location it repeatedly fires the first enabled edge
(declaration order — the generated code is deterministic even where
the model is not) until no edge is enabled, consuming pending inputs
FIFO and collecting emitted outputs.

Clock values are derived from the invocation timestamp (``now`` minus
the recorded reset instant), mirroring how generated C code samples a
platform timer — which is precisely why platform invocation delays
leak into the timed behavior, the gap this framework verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

__all__ = ["StepResult", "Controller", "take_first"]


@dataclass
class StepResult:
    """Outcome of one invocation of the controller."""

    #: Output channels emitted, in emission order.
    outputs: list[str] = field(default_factory=list)
    #: Input channels consumed, in consumption order.
    consumed: list[str] = field(default_factory=list)
    #: Inputs delivered but not consumable in this invocation
    #: (dropped by the code — the read policy already dequeued them).
    dropped: list[str] = field(default_factory=list)
    #: Number of transitions fired.
    fired: int = 0


@runtime_checkable
class Controller(Protocol):
    """What the platform expects from ``Code(PIM)``."""

    def reset(self, now: float) -> None:
        """(Re)initialize: initial location, clocks zeroed at ``now``."""

    def step(self, now: float, inputs: Sequence[str]) -> StepResult:
        """Run-to-completion at invocation time ``now``."""

    @property
    def location(self) -> str:
        """Current control location (introspection/testing)."""


def take_first(pending: list[str], channel: str) -> bool:
    """Consume the first occurrence of ``channel`` from ``pending``.

    Shared helper for the interpreter and the generated code: returns
    True (and mutates the list) when the channel was pending.
    """
    try:
        pending.remove(channel)
    except ValueError:
        return False
    return True
