"""Wire protocol of the verification service: length-prefixed JSON.

Every message — request or response — is one *frame*::

    +----------------+----------------------------+
    | 4-byte length  |  UTF-8 JSON payload        |
    | (big-endian !I)|  (exactly `length` bytes)  |
    +----------------+----------------------------+

Framing keeps the protocol trivially self-delimiting over TCP and
Unix sockets alike; JSON keeps it inspectable (``nc`` + a hexdump is
a working debugger).  Frames above :data:`MAX_FRAME` are rejected on
read — a corrupted length prefix must not allocate gigabytes.

Requests are JSON objects with an ``op`` key:

``{"op": "ping"}``
    Liveness probe → ``{"type": "pong", "pid": ...}``.
``{"op": "stats"}``
    Cache / worker-pool / request counters → ``{"type": "stats"}``.
``{"op": "verify" | "portfolio" | "submit", ...}``
    A job submission (the three spellings are equivalent; ``verify``
    reads better for one scheme, ``portfolio`` for a grid).  Jobs are
    described either *declaratively* — ``pim_factory`` and
    ``scheme_factory`` as ``"module:qualname"`` references plus
    ``axes`` (the :class:`~repro.apps.schemes.GridSpec` shape) — or
    *by value* as ``jobs_pickle``, a base64 pickle of
    :class:`~repro.mc.portfolio.PortfolioJob` objects (what the CLI's
    ``--server`` forwarding sends).  **Pickled submissions execute
    arbitrary code on unpickle: the service must only listen where
    every client is trusted** (the default is a mode-0700 Unix
    socket).
``{"op": "monitor", ...}``
    Online trace-conformance checking: ``pim_factory`` /
    ``scheme_factory`` (+ ``scheme_kwargs``) name the scheme under
    monitor, ``traces`` is a list of event streams as JSON dicts
    (see :mod:`repro.monitor.events`), optional ``requirement`` is
    ``[input_channel, output_channel, deadline_ms]``.  The
    precompiled monitor model is cached for the server's lifetime
    next to the verdict memo; one ``row`` per trace streams back
    (``origin`` ``monitor``) carrying the conformance verdict.
``{"op": "shutdown"}``
    Ask the server to begin its graceful drain.

A submission is answered by an ``accepted`` frame carrying the
request id and job count, then one ``row`` frame per job **in
completion order** (``origin`` is ``explored``, ``memo`` or
``cancelled``), then one ``done`` frame with the request summary.
Request-level failures produce a single ``error`` frame instead.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "decode_jobs",
    "encode_frame",
    "encode_jobs",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

_HEADER = struct.Struct("!I")

#: Upper bound on one frame's payload (64 MiB) — large enough for any
#: realistic grid, small enough that a garbage length prefix fails
#: fast instead of exhausting memory.
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame (oversized, truncated, or not JSON)."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire bytes."""
    payload = json.dumps(message, separators=(",", ":"),
                         default=str).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})")
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") \
            from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})")


# ---------------------------------------------------------------------
# Blocking-socket helpers (the synchronous client)
# ---------------------------------------------------------------------
def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at a frame
    boundary, :class:`ProtocolError` on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of "
                f"{count} bytes missing)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """One message from a blocking socket (``None`` on clean EOF)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed between header and "
                            "payload")
    return _decode_payload(payload)


# ---------------------------------------------------------------------
# asyncio helpers (server and async client)
# ---------------------------------------------------------------------
async def read_frame(reader) -> dict | None:
    """One message from an :class:`asyncio.StreamReader` (``None`` on
    clean EOF at a frame boundary)."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({length - len(exc.partial)}"
            f" bytes missing)") from exc
    return _decode_payload(payload)


def write_frame(writer, message: dict) -> None:
    """Queue one message on an :class:`asyncio.StreamWriter` (callers
    ``await writer.drain()`` at their own cadence)."""
    writer.write(encode_frame(message))


# ---------------------------------------------------------------------
# Job payloads
# ---------------------------------------------------------------------
def encode_jobs(jobs) -> str:
    """Base64 pickle of a job list — the by-value submission body."""
    return base64.b64encode(
        pickle.dumps(list(jobs))).decode("ascii")


def decode_jobs(text: Any):
    """Inverse of :func:`encode_jobs` (trusted input only — see the
    module docstring's security note)."""
    if not isinstance(text, str):
        raise ProtocolError("jobs_pickle must be a base64 string")
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"jobs_pickle is not base64: {exc}") \
            from exc
    try:
        jobs = pickle.loads(raw)
    except Exception as exc:
        raise ProtocolError(f"jobs_pickle failed to unpickle: {exc}") \
            from exc
    if not isinstance(jobs, list):
        raise ProtocolError("jobs_pickle must unpickle to a list")
    return jobs
