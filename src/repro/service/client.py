"""Clients for the verification service (blocking and asyncio).

:class:`ServiceClient` is the synchronous client the CLI's
``--server`` forwarding uses: connect, submit, iterate row frames as
the daemon streams them, read the ``done`` summary.
:class:`AsyncServiceClient` is the same surface over asyncio streams
for callers already inside an event loop.  Both expose the three ops
(``verify``/``portfolio`` submissions via ``run_jobs``, trace
conformance via ``monitor``) over one shared request-building and
row-folding path (:class:`_OutcomeFolder`).

Addresses are spelled as one string: ``"host:port"`` for TCP or a
filesystem path (optionally ``"unix:/path"``) for a Unix socket —
:func:`parse_address` is the single parser both clients and the CLI
share.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Iterator

from repro.service.protocol import (
    ProtocolError,
    encode_jobs,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)

__all__ = [
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceError",
    "SubmissionOutcome",
    "parse_address",
]


class ServiceError(RuntimeError):
    """The server answered with an ``error`` frame (or hung up)."""


def parse_address(address: str | tuple) -> tuple[int, object]:
    """``"host:port"`` / ``"unix:/path"`` / ``"/path"`` → a
    ``(family, target)`` pair ready for ``socket.connect``."""
    if isinstance(address, tuple):
        return socket.AF_INET, address
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    if address.startswith(("/", "./")):
        return socket.AF_UNIX, address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"address {address!r} is neither 'host:port' nor a unix "
            f"socket path")
    return socket.AF_INET, (host or "127.0.0.1", int(port))


@dataclass
class SubmissionOutcome:
    """Everything one submission streamed back."""

    request_id: int
    jobs: int
    #: ``(index, row, origin)`` in arrival (= completion) order.
    rows: list[tuple[int, dict, str]] = field(default_factory=list)
    #: The server's scheduler stats at completion time.
    stats: dict | None = None

    def ordered_rows(self) -> list[dict]:
        """Rows re-sorted to submission order."""
        return [row for _, row, _ in sorted(self.rows)]

    def origins(self) -> list[str]:
        return [origin for _, _, origin in sorted(self.rows)]


def _submission_message(jobs, measure_suprema=None) -> dict:
    message = {"op": "submit", "jobs_pickle": encode_jobs(jobs)}
    if measure_suprema is not None:
        message["measure_suprema"] = measure_suprema
    return message


def _monitor_message(traces, *, pim_factory: str,
                     scheme_factory: str | None = None,
                     scheme_kwargs: dict | None = None,
                     requirement=None) -> dict:
    """Build the ``monitor`` op frame (traces as JSON event dicts)."""
    from repro.monitor import event_to_dict

    wire = [[event if isinstance(event, dict) else event_to_dict(event)
             for event in trace] for trace in traces]
    message = {"op": "monitor", "pim_factory": pim_factory,
               "traces": wire}
    if scheme_factory is not None:
        message["scheme_factory"] = scheme_factory
    if scheme_kwargs:
        message["scheme_kwargs"] = dict(scheme_kwargs)
    if requirement is not None:
        message["requirement"] = list(requirement)
    return message


class _OutcomeFolder:
    """Fold an ``accepted``/``row``/``done`` frame stream into a
    :class:`SubmissionOutcome` — the one state machine behind both the
    blocking and the asyncio ``run`` (and their ``monitor`` wrappers).
    """

    def __init__(self):
        self.outcome: SubmissionOutcome | None = None

    def fold(self, frame: dict) -> bool:
        """Consume one frame; ``True`` once the stream is complete."""
        kind = frame.get("type")
        if kind == "accepted":
            self.outcome = SubmissionOutcome(
                request_id=frame["id"], jobs=frame["jobs"])
        elif kind == "row":
            if self.outcome is None:
                raise ProtocolError("row before accepted")
            self.outcome.rows.append((frame["index"], frame["row"],
                                      frame["origin"]))
        elif kind == "done":
            if self.outcome is None:
                raise ProtocolError("done before accepted")
            self.outcome.stats = frame.get("stats")
            return True
        return False

    def result(self) -> SubmissionOutcome:
        if self.outcome is None:
            raise ServiceError("stream ended without frames")
        return self.outcome


class ServiceClient:
    """Blocking client over one socket connection."""

    def __init__(self, address: str | tuple, *,
                 timeout: float | None = 300.0):
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None

    # -- connection ----------------------------------------------------
    def connect(self) -> "ServiceClient":
        family, target = parse_address(self.address)
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(target)
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def sock(self) -> socket.socket:
        if self._sock is None:
            raise ServiceError("client is not connected")
        return self._sock

    def _roundtrip(self, message: dict) -> dict:
        send_frame(self.sock, message)
        reply = recv_frame(self.sock)
        if reply is None:
            raise ServiceError("server closed the connection")
        if reply.get("type") == "error":
            raise ServiceError(reply.get("message", "unknown error"))
        return reply

    # -- simple ops ----------------------------------------------------
    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        return self._roundtrip({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        self._roundtrip({"op": "shutdown"})

    # -- submissions ---------------------------------------------------
    def iter_frames(self, message: dict) -> Iterator[dict]:
        """Submit and yield ``accepted``/``row``/``done`` frames as
        they arrive (``done`` is the last frame yielded)."""
        send_frame(self.sock, message)
        while True:
            frame = recv_frame(self.sock)
            if frame is None:
                raise ServiceError(
                    "server closed the connection mid-stream")
            kind = frame.get("type")
            if kind == "error":
                raise ServiceError(
                    frame.get("message", "unknown error"))
            yield frame
            if kind == "done":
                return

    def run(self, message: dict) -> SubmissionOutcome:
        """Submit and collect the full stream."""
        folder = _OutcomeFolder()
        for frame in self.iter_frames(message):
            folder.fold(frame)
        return folder.result()

    def run_jobs(self, jobs) -> SubmissionOutcome:
        """Verify pickled :class:`PortfolioJob` objects by value."""
        return self.run(_submission_message(jobs))

    def monitor(self, traces, *, pim_factory: str,
                scheme_factory: str | None = None,
                scheme_kwargs: dict | None = None,
                requirement=None) -> SubmissionOutcome:
        """Stream traces through the daemon's conformance monitor.

        ``traces`` is a sequence of event streams
        (:class:`~repro.sim.trace.TraceEvent` objects or their JSON
        dicts); the scheme under monitor is named by factory reference
        like a ``verify`` submission.  One row per trace comes back
        with the :meth:`~repro.monitor.MonitorSession.verdict` shape.
        """
        return self.run(_monitor_message(
            traces, pim_factory=pim_factory,
            scheme_factory=scheme_factory,
            scheme_kwargs=scheme_kwargs, requirement=requirement))


class AsyncServiceClient:
    """The same surface over asyncio streams."""

    def __init__(self, address: str | tuple):
        self.address = address
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        family, target = parse_address(self.address)
        if family == socket.AF_UNIX:
            self._reader, self._writer = \
                await asyncio.open_unix_connection(target)
        else:
            host, port = target
            self._reader, self._writer = \
                await asyncio.open_connection(host, port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        if self._writer is None:
            await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _roundtrip(self, message: dict) -> dict:
        write_frame(self._writer, message)
        await self._writer.drain()
        reply = await read_frame(self._reader)
        if reply is None:
            raise ServiceError("server closed the connection")
        if reply.get("type") == "error":
            raise ServiceError(reply.get("message", "unknown error"))
        return reply

    async def ping(self) -> dict:
        return await self._roundtrip({"op": "ping"})

    async def stats(self) -> dict:
        return (await self._roundtrip({"op": "stats"}))["stats"]

    async def run(self, message: dict) -> SubmissionOutcome:
        write_frame(self._writer, message)
        await self._writer.drain()
        folder = _OutcomeFolder()
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                raise ServiceError(
                    "server closed the connection mid-stream")
            if frame.get("type") == "error":
                raise ServiceError(
                    frame.get("message", "unknown error"))
            if folder.fold(frame):
                return folder.result()

    async def run_jobs(self, jobs) -> SubmissionOutcome:
        return await self.run(_submission_message(jobs))

    async def monitor(self, traces, *, pim_factory: str,
                      scheme_factory: str | None = None,
                      scheme_kwargs: dict | None = None,
                      requirement=None) -> SubmissionOutcome:
        """Async twin of :meth:`ServiceClient.monitor`."""
        return await self.run(_monitor_message(
            traces, pim_factory=pim_factory,
            scheme_factory=scheme_factory,
            scheme_kwargs=scheme_kwargs, requirement=requirement))
