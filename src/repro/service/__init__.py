"""Long-running verification service: ``repro serve`` + client.

The daemon that turns the batch tool into the traffic-serving system
the ROADMAP describes: one process keeps the Python toolchain
imported, the verdict cache warm and a pool of pre-forked workers
alive, so re-verifying the same PSM under many platform schemes —
the paper's workflow — costs an exploration once and a cache lookup
ever after.

Modules
-------
``protocol``
    Length-prefixed JSON framing shared by server and clients.
``cache``
    :class:`BoundedVerdictMemo` — the server-lifetime verdict cache
    (LRU over canonical keys, hit/miss/eviction counters).
``workers``
    :class:`WarmWorkerPool` — pre-forked processes with ``min_idle``,
    per-worker ``recycle_after_executions`` and health pings.
``scheduler``
    :class:`JobScheduler` — bridges decoded requests onto the
    existing executors and the shared memo.
``server``
    :class:`VerificationServer` — the asyncio accept loop, per-
    connection row streaming and the SIGTERM drain path.
``client``
    :class:`ServiceClient` (blocking) and
    :class:`AsyncServiceClient` — used by ``repro verify --server``.
"""

from repro.service.cache import BoundedVerdictMemo
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.scheduler import JobScheduler
from repro.service.server import VerificationServer
from repro.service.workers import WarmWorkerPool, WorkerDied

__all__ = [
    "AsyncServiceClient",
    "BoundedVerdictMemo",
    "JobScheduler",
    "ServiceClient",
    "VerificationServer",
    "WarmWorkerPool",
    "WorkerDied",
]
