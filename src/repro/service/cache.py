"""Server-lifetime verdict cache: a bounded LRU over the memo.

:class:`BoundedVerdictMemo` *is a* :class:`~repro.mc.memo.VerdictMemo`
— same claim/commit in-flight protocol, same occupancy-certificate
exactness — shared by every verifier the daemon creates, so verdicts
survive across requests and clients.  What it adds is the property a
cache running forever needs: a bound.  Keys are tracked in LRU order
(a :meth:`find` hit refreshes recency through the base class's
``_touch`` hook); storing past ``max_entries`` keys evicts the least
recently used key *and all its entries* (``evictions`` counts evicted
keys).

Eviction is always safe — the memo is content-addressed, so the worst
case is re-exploring a job that would have hit.  In-flight claims are
untouched by eviction (they live in a separate map), so an owner
racing an eviction still commits and releases its waiters normally.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mc.memo import MemoEntry, VerdictMemo

__all__ = ["BoundedVerdictMemo"]


class BoundedVerdictMemo(VerdictMemo):
    """A :class:`VerdictMemo` holding at most ``max_entries`` keys."""

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}")
        super().__init__()
        self.max_entries = max_entries
        #: Keys dropped by the LRU bound (with all their entries).
        self.evictions = 0
        self._lru: OrderedDict[tuple, None] = OrderedDict()

    # Both hooks run with the memo lock held (see VerdictMemo).

    def _store(self, key: tuple, entry: MemoEntry) -> None:
        super()._store(key, entry)
        self._lru[key] = None
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            oldest, _ = self._lru.popitem(last=False)
            self._entries.pop(oldest, None)
            self.evictions += 1

    def _touch(self, key: tuple) -> None:
        if key in self._lru:
            self._lru.move_to_end(key)

    def stats(self) -> dict[str, int]:
        stats = super().stats()
        with self._lock:
            stats["keys"] = len(self._lru)
        stats["max_entries"] = self.max_entries
        stats["evictions"] = self.evictions
        return stats
