"""Job scheduling for the daemon: requests → executors → row stream.

One :class:`JobScheduler` lives for the server's lifetime and owns
the pieces every request shares:

* the :class:`~repro.service.cache.BoundedVerdictMemo` (injected into
  every verifier, so equivalent jobs across requests and clients
  resolve to one exploration + N cache hits),
* one warm-started :class:`~repro.mc.portfolio.PortfolioVerifier`
  for the thread executor (its pinned intern table is capped — the
  daemon must not leak),
* a :class:`~repro.service.workers.WarmWorkerPool` for the process
  executor,
* a digest-keyed PIM obligation cache.  The per-run obligation cache
  keys by ``id(pim)``, which a daemon cannot trust across requests —
  a freed model's id gets reused — so the scheduler keys by the
  canonical network digest instead (content-addressed, safe forever).

Jobs dispatch onto a small thread pool; each finished row is pushed
through the caller's ``emit`` callback (the server bridges that into
the connection's asyncio queue) tagged with its origin —
``explored``, ``memo`` or ``cancelled``.  :meth:`begin_drain` flips
the scheduler into shutdown mode: jobs not yet started return
explicit ``cancelled`` rows instead of running.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.mc.portfolio import (
    PortfolioJob,
    PortfolioResult,
    PortfolioVerifier,
    _compute_obligation,
    _ProcessConfig,
    _ProcessJobSpec,
    memo_entry_from_row,
    memoized_result,
    resolve_executor,
)
from repro.service.cache import BoundedVerdictMemo
from repro.service.workers import WarmWorkerPool, WorkerDied

__all__ = ["JobScheduler"]

#: Default cap on the warm-start intern table (zones, not bytes) —
#: the bound that turns the cross-request warm start from a leak into
#: a cache.
DEFAULT_WARM_START_MAX_ZONES = 200_000


def _row_origin(row: PortfolioResult) -> str:
    if row.status == "cancelled":
        return "cancelled"
    if row.memo_hit is not None:
        return "memo"
    return "explored"


def _cancelled_row(index: int, job: PortfolioJob) -> PortfolioResult:
    return PortfolioResult(
        index=index, name=job.name, scheme=job.scheme,
        deadline_ms=job.deadline_ms, status="cancelled",
        error="cancelled by server shutdown")


class JobScheduler:
    """Server-lifetime bridge from decoded jobs to the executors."""

    def __init__(self, *,
                 jobs: int | None = None,
                 executor: str | None = None,
                 max_states: int = 2_000_000,
                 abstraction: str | None = None,
                 cache_entries: int = 1024,
                 dispatch_threads: int = 8,
                 warm_start_max_zones: int = DEFAULT_WARM_START_MAX_ZONES,
                 workers: int | None = None,
                 min_idle: int | None = None,
                 recycle_after_executions: int | None = None,
                 job_timeout: float | None = None):
        self.executor = resolve_executor(executor)
        self.max_states = max_states
        self.abstraction = abstraction
        self.memo = BoundedVerdictMemo(max_entries=cache_entries)
        self.verifier = PortfolioVerifier(
            jobs=jobs, max_states=max_states, abstraction=abstraction,
            reuse=True, warm_start=True,
            warm_start_max_zones=warm_start_max_zones,
            memo=self.memo)
        self.workers: WarmWorkerPool | None = None
        if self.executor == "process":
            self.workers = WarmWorkerPool(
                workers or jobs or 2, min_idle=min_idle,
                recycle_after_executions=recycle_after_executions,
                job_timeout=job_timeout)
        self._dispatch = ThreadPoolExecutor(
            max_workers=dispatch_threads,
            thread_name_prefix="repro-dispatch")
        self._draining = threading.Event()
        self._active = 0
        self._idle = threading.Condition()
        self._obligations: dict[tuple, tuple] = {}
        self._obligation_lock = threading.Lock()
        #: Precompiled conformance monitors, keyed by canonical PSM
        #: digest — server-lifetime, like the verdict memo, so every
        #: connection streaming traces for the same scheme shares one
        #: zone-graph precompilation.
        self._monitor_models: dict[str, object] = {}
        self._monitor_lock = threading.Lock()
        #: Request/job counters for the ``stats`` op.
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self.job_errors = 0
        self.traces_monitored = 0

    # -- submission ----------------------------------------------------
    def submit(self, jobs: list[PortfolioJob],
               emit: Callable[[int, dict, str], None],
               done: Callable[[], None]) -> None:
        """Schedule every job; stream rows through ``emit``.

        ``emit(index, row_dict, origin)`` fires once per job from a
        dispatch thread, in completion order (``index`` is the job's
        submission position, so clients can reorder); ``done()``
        fires after the last row.  Neither callback may raise — the server's bridges only
        enqueue.  During a drain, not-yet-started jobs short-circuit
        to ``cancelled`` rows, so a request submitted mid-shutdown
        still gets one frame per job plus its ``done``.
        """
        state = {"remaining": len(jobs)}
        state_lock = threading.Lock()
        with self._idle:
            self._active += len(jobs)
        self.jobs_submitted += len(jobs)

        def finish_one() -> None:
            # done() strictly before the idle notification: a draining
            # server closes connections once wait_idle() returns, so
            # the done frame must already be queued by then.
            with state_lock:
                state["remaining"] -= 1
                last = state["remaining"] == 0
            if last:
                done()
            with self._idle:
                self._active -= 1
                if self._active == 0:
                    self._idle.notify_all()

        def run_one(index: int, job: PortfolioJob) -> None:
            try:
                row = self._execute_job(index, job)
                origin = _row_origin(row)
                if origin == "cancelled":
                    self.jobs_cancelled += 1
                elif row.status != "ok":
                    self.job_errors += 1
                self.jobs_completed += 1
                emit(index, row.row(), origin)
            finally:
                finish_one()

        if not jobs:
            done()
            with self._idle:
                self._idle.notify_all()
            return
        for index, job in enumerate(jobs):
            self._dispatch.submit(run_one, index, job)

    def _execute_job(self, index: int,
                     job: PortfolioJob) -> PortfolioResult:
        if self._draining.is_set():
            return _cancelled_row(index, job)
        try:
            if self.executor == "process":
                return self._execute_process(index, job)
            return self.verifier.run_job(
                job, index=index, obligation=self._obligation(job))
        except Exception as exc:
            # The verifier folds job failures into rows itself; this
            # is the scheduler-level belt-and-braces (obligation or
            # dispatch machinery failures land here).
            return PortfolioResult(
                index=index, name=job.name, scheme=job.scheme,
                deadline_ms=job.deadline_ms, status="error",
                error=f"{type(exc).__name__}: {exc}")

    # -- shared obligations (content-addressed) ------------------------
    def _obligation(self, job: PortfolioJob) -> tuple:
        """The job's ``(pim_result, internal)``, cached by canonical
        PIM digest + requirement + budget."""
        from repro.core.framework import TimingVerificationFramework
        from repro.ta.rename import canonical_network

        max_states = job.max_states or self.max_states
        digest = canonical_network(job.pim.network).digest
        key = (digest, job.input_channel, job.output_channel,
               job.deadline_ms, max_states)
        with self._obligation_lock:
            value = self._obligations.get(key)
        if value is not None:
            return value
        framework = TimingVerificationFramework(
            max_states=max_states, jobs=None,
            abstraction=self.abstraction)
        value = _compute_obligation(job, framework)
        with self._obligation_lock:
            # A concurrent duplicate computation is wasteful, never
            # wrong — both produce the identical content-keyed value.
            self._obligations.setdefault(key, value)
        return value

    # -- conformance monitoring ----------------------------------------
    def monitor_model(self, psm):
        """A precompiled monitor for ``psm``, cached for the server's
        lifetime (same idiom as :meth:`_obligation`: content-addressed
        key, duplicate computation wasteful but never wrong)."""
        from repro.monitor import MonitorModel
        from repro.ta.rename import canonical_network

        digest = canonical_network(psm.network).digest
        with self._monitor_lock:
            model = self._monitor_models.get(digest)
        if model is not None:
            return model
        model = MonitorModel(psm, abstraction=self.abstraction)
        model.precompile()
        with self._monitor_lock:
            return self._monitor_models.setdefault(digest, model)

    def submit_monitor(self, psm, traces, requirement,
                       emit: Callable[[int, dict, str], None],
                       done: Callable[[], None]) -> None:
        """Check traces against a scheme's PSM; one row per trace.

        The whole batch runs as one dispatch task — batched stepping
        across sessions is the monitor's throughput lever, so the
        traces of a request advance in lockstep rather than one
        thread each.  During a drain every trace comes back as a
        ``cancelled`` row, mirroring :meth:`submit`.
        """
        self.jobs_submitted += len(traces)
        if not traces:
            done()
            with self._idle:
                self._idle.notify_all()
            return
        with self._idle:
            self._active += 1

        def run() -> None:
            try:
                rows = self._monitor_rows(psm, traces, requirement)
                for index, (row, origin) in enumerate(rows):
                    emit(index, row, origin)
            finally:
                # done() strictly before the idle notification (see
                # submit()).
                done()
                with self._idle:
                    self._active -= 1
                    if self._active == 0:
                        self._idle.notify_all()

        self._dispatch.submit(run)

    def _monitor_rows(self, psm, traces, requirement):
        """The rows for one monitor request (never raises)."""
        if self._draining.is_set():
            self.jobs_cancelled += len(traces)
            return [({"status": "cancelled",
                      "error": "cancelled by server shutdown"},
                     "cancelled")] * len(traces)
        try:
            from repro.monitor import BatchMonitor

            model = self.monitor_model(psm)
            runner = BatchMonitor(model, len(traces),
                                  requirement=requirement)
            runner.feed(traces)
            verdicts = runner.verdicts()
        except Exception as exc:
            self.job_errors += len(traces)
            self.jobs_completed += len(traces)
            return [({"status": "error",
                      "error": f"{type(exc).__name__}: {exc}"},
                     "monitor")] * len(traces)
        self.jobs_completed += len(traces)
        self.traces_monitored += len(traces)
        return [({"status": "ok", **verdict}, "monitor")
                for verdict in verdicts]

    # -- process execution over the warm pool --------------------------
    def _execute_process(self, index: int,
                         job: PortfolioJob) -> PortfolioResult:
        """One job on the warm pool, with parent-side memo dedup.

        Mirrors the portfolio's parent-side memo split, but per job:
        find → claim → dispatch → record, with the failure-sentinel
        fallback of :mod:`repro.mc.memo`.  A worker casualty becomes
        an error row and a failed commit, so concurrent waiters on
        the same key immediately fall back to their own dispatch.
        """
        from repro.core.delays import bounds_from_internal
        from repro.core.transform import transform
        from repro.mc.memo import psm_canonical_model
        from repro.mc.parallel import EngineConfig

        obligation = self._obligation(job)
        psm = transform(job.pim, job.scheme)
        model = psm_canonical_model(psm)
        _, internal = obligation
        bounds = bounds_from_internal(
            job.scheme, job.input_channel, job.output_channel,
            internal)
        key = self.verifier._memo_key(
            job, psm, model, [job.deadline_ms, bounds.relaxed])
        memo = self.memo
        fallback = False
        while True:
            entry = memo.find(key, model)
            if entry is not None:
                return memoized_result(index, job, entry, obligation)
            if fallback:
                break
            claimed = memo.claim(key)
            if claimed is None:
                break
            claimed.event.wait()
            fallback = claimed.failed
        config = _ProcessConfig(
            engine=EngineConfig.capture(abstraction=self.abstraction,
                                        jobs=None),
            max_states=self.max_states, fused=False,
            obligations=(obligation,), reuse=True)
        spec = _ProcessJobSpec(index=index, job=job, obligation=0)
        entry = None
        try:
            if self._draining.is_set():
                return _cancelled_row(index, job)
            try:
                row = self.workers.run(config, spec)
            except WorkerDied as exc:
                return PortfolioResult(
                    index=index, name=job.name, scheme=job.scheme,
                    deadline_ms=job.deadline_ms, status="error",
                    error=f"WorkerDied: {exc}")
            entry = memo_entry_from_row(row, model)
            return row
        finally:
            if fallback:
                if entry is not None:
                    memo.record(key, entry)
            else:
                memo.commit(key, entry)

    # -- lifecycle -----------------------------------------------------
    def begin_drain(self) -> None:
        """Shutdown mode: running jobs finish, queued ones cancel."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is active (queued or running)."""
        with self._idle:
            return self._idle.wait_for(lambda: self._active == 0,
                                       timeout)

    def health_check(self) -> int:
        return self.workers.health_check() if self.workers else 0

    def stats(self) -> dict:
        return {
            "executor": self.executor,
            "cache": self.memo.stats(),
            "warm_start": self.verifier.warm_start_stats(),
            "workers": self.workers.stats() if self.workers else None,
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "cancelled": self.jobs_cancelled,
                "errors": self.job_errors,
                "active": self._active,
            },
            "monitor": {
                "models": len(self._monitor_models),
                "traces": self.traces_monitored,
            },
        }

    def shutdown(self) -> None:
        self.begin_drain()
        self._dispatch.shutdown(wait=True, cancel_futures=True)
        if self.workers is not None:
            self.workers.shutdown()
