"""The asyncio daemon: accept loop, row streaming, graceful drain.

One :class:`VerificationServer` wraps a
:class:`~repro.service.scheduler.JobScheduler` behind the framed
protocol of :mod:`repro.service.protocol`, on either a TCP or a Unix
socket.  Concurrency model:

* The event loop only parses frames and moves dicts — verification
  never runs on it.  Jobs go to the scheduler's dispatch threads;
  each finished row re-enters the loop via
  ``loop.call_soon_threadsafe`` into the owning connection's
  :class:`asyncio.Queue`, from which a per-connection writer task
  streams frames in commit order.  A slow client therefore only
  backs up its own queue.
* Graceful shutdown (SIGTERM/SIGINT or the ``shutdown`` op) stops
  accepting, flips the scheduler into drain mode — running jobs
  finish, queued ones come back as explicit ``cancelled`` rows — and
  closes each connection only after its pending frames flushed.

Request decoding lives here too: a submission either names factories
(``pim_factory``/``scheme_factory`` + ``axes``) or carries pickled
jobs by value (trusted clients only; see the protocol docstring).
"""

from __future__ import annotations

import asyncio
import importlib
import os
import signal
from typing import Any

from repro.mc.portfolio import portfolio_jobs
from repro.service.protocol import (
    ProtocolError,
    decode_jobs,
    read_frame,
    write_frame,
)
from repro.service.scheduler import JobScheduler

__all__ = ["VerificationServer", "decode_monitor", "resolve_callable"]

#: Sentinel closing a connection's frame queue.
_CLOSE = object()


def resolve_callable(ref: str):
    """``"module:qualname"`` → the callable it names."""
    module, sep, qualname = ref.partition(":")
    if not sep or not module or not qualname:
        raise ValueError(
            f"factory reference {ref!r} must look like "
            f"'package.module:qualname'")
    target: Any = importlib.import_module(module)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise ValueError(f"{ref!r} does not name a callable")
    return target


def decode_submission(message: dict):
    """A submission frame → the list of jobs it describes."""
    if "jobs_pickle" in message:
        jobs = decode_jobs(message["jobs_pickle"])
        if not jobs:
            raise ProtocolError("jobs_pickle decoded to no jobs")
        return jobs
    try:
        pim_factory = message["pim_factory"]
        input_channel = message["input_channel"]
        output_channel = message["output_channel"]
        deadline_ms = message["deadline_ms"]
    except KeyError as exc:
        raise ProtocolError(
            f"submission is missing required field {exc}") from None
    pim = resolve_callable(pim_factory)()
    scheme_factory = resolve_callable(
        message.get("scheme_factory", "repro.apps.schemes:"
                                      "case_study_scheme"))
    axes = message.get("axes") or {}
    if axes:
        from repro.apps.schemes import scheme_grid
        schemes = scheme_grid(scheme_factory, **{
            name: list(values) for name, values in axes.items()})
    else:
        schemes = [scheme_factory()]
    return portfolio_jobs(
        pim, schemes,
        input_channel=input_channel, output_channel=output_channel,
        deadline_ms=deadline_ms,
        measure_suprema=bool(message.get("measure_suprema", False)),
        max_states=message.get("max_states"))


def decode_monitor(message: dict):
    """A monitor frame → ``(psm, traces, requirement)``.

    The scheme under monitor is named by factory reference like a
    ``verify`` submission (one scheme, optionally with
    ``scheme_kwargs``); ``traces`` carries the event streams as JSON
    dicts — see :mod:`repro.monitor.events` for the schema.
    """
    from repro.core.transform import transform
    from repro.monitor import event_from_dict

    try:
        pim_factory = message["pim_factory"]
        wire = message["traces"]
    except KeyError as exc:
        raise ProtocolError(
            f"monitor request is missing required field {exc}") \
            from None
    if not isinstance(wire, list) or not wire:
        raise ProtocolError(
            "monitor request needs a non-empty 'traces' list")
    pim = resolve_callable(pim_factory)()
    scheme_factory = resolve_callable(
        message.get("scheme_factory", "repro.apps.schemes:"
                                      "case_study_scheme"))
    scheme = scheme_factory(**(message.get("scheme_kwargs") or {}))
    traces = [[event_from_dict(event) for event in trace]
              for trace in wire]
    requirement = message.get("requirement")
    if requirement is not None:
        requirement = (str(requirement[0]), str(requirement[1]),
                       int(requirement[2]))
    return transform(pim, scheme), traces, requirement


class _Connection:
    """One client: its frame queue and writer task."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.writer_task: asyncio.Task | None = None
        #: Requests of this connection still streaming rows.
        self.open_requests = 0
        #: The read side hit EOF — close the queue once requests end.
        self.reader_closed = False

    def push(self, frame) -> None:
        self.queue.put_nowait(frame)


class VerificationServer:
    """Framed-protocol front end over one :class:`JobScheduler`.

    Exactly one of ``port`` (TCP, with ``host``) or ``path`` (Unix
    socket) selects the transport.  ``serve()`` runs until
    :meth:`begin_shutdown` — called by a signal handler (installed
    when the loop allows it), the ``shutdown`` op, or a test.
    """

    def __init__(self, scheduler: JobScheduler, *,
                 host: str = "127.0.0.1", port: int | None = None,
                 path: str | None = None,
                 install_signals: bool = True):
        if (port is None) == (path is None):
            raise ValueError("pass exactly one of port= or path=")
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.path = path
        self.install_signals = install_signals
        self.address: tuple | str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._connections: set[_Connection] = set()
        self._request_counter = 0
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (without blocking)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self.path is not None:
            if os.path.exists(self.path):
                # A stale socket from a previous instance: remove so
                # restart-on-the-same-path (client reconnect) works.
                os.unlink(self.path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.path)
            os.chmod(self.path, 0o700)
            self.address = self.path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host,
                port=self.port)
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        if self.install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self.begin_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    # Non-main thread or non-Unix loop: tests drive
                    # begin_shutdown() directly instead.
                    break

    async def serve(self) -> None:
        """Run until shutdown, then drain and close."""
        if self._server is None:
            await self.start()
        try:
            await self._stop.wait()
            # Stop accepting; in-flight work drains off-loop.
            self._server.close()
            await self._server.wait_closed()
            await asyncio.get_running_loop().run_in_executor(
                None, self.scheduler.wait_idle)
            # Every request has streamed its rows + done by now; let
            # each connection flush its queue and close.
            for connection in list(self._connections):
                connection.push(_CLOSE)
            tasks = [c.writer_task for c in self._connections
                     if c.writer_task is not None]
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await asyncio.get_running_loop().run_in_executor(
                None, self.scheduler.shutdown)

    def begin_shutdown(self) -> None:
        """Flip into drain mode (idempotent, loop-thread only — use
        :meth:`request_shutdown` from other threads)."""
        self.scheduler.begin_drain()
        if self._stop is not None:
            self._stop.set()

    def request_shutdown(self) -> None:
        """Thread-safe :meth:`begin_shutdown`."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.begin_shutdown)

    # -- per-connection ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(writer)
        connection.writer_task = asyncio.ensure_future(
            self._write_frames(connection))
        self._connections.add(connection)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    connection.push({"type": "error",
                                     "message": str(exc)})
                    break
                if message is None:
                    break
                self._dispatch_op(connection, message)
        finally:
            # Reader side is done.  If rows are still streaming, the
            # writer task stays alive until their done-frames land
            # (_request_done pushes the close sentinel); otherwise
            # close now.
            connection.reader_closed = True
            if connection.open_requests == 0:
                connection.push(_CLOSE)
            await asyncio.shield(connection.writer_task)
            self._connections.discard(connection)

    async def _write_frames(self, connection: _Connection) -> None:
        writer = connection.writer
        try:
            while True:
                frame = await connection.queue.get()
                if frame is _CLOSE:
                    break
                write_frame(writer, frame)
                await writer.drain()
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client went away; rows are simply dropped
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- request handling ----------------------------------------------
    def _dispatch_op(self, connection: _Connection,
                     message: dict) -> None:
        op = message.get("op")
        if op == "ping":
            connection.push({"type": "pong", "pid": os.getpid(),
                             "draining": self.scheduler.draining})
        elif op == "stats":
            stats = self.scheduler.stats()
            stats["requests_served"] = self.requests_served
            connection.push({"type": "stats", "stats": stats})
        elif op == "shutdown":
            connection.push({"type": "shutting-down"})
            self.begin_shutdown()
        elif op in ("verify", "portfolio", "submit"):
            self._submit(connection, message)
        elif op == "monitor":
            self._submit_monitor(connection, message)
        else:
            connection.push({"type": "error",
                             "message": f"unknown op {op!r}"})

    def _submit(self, connection: _Connection, message: dict) -> None:
        self._request_counter += 1
        request_id = self._request_counter
        try:
            jobs = decode_submission(message)
        except Exception as exc:
            connection.push({
                "type": "error", "id": request_id,
                "message": f"{type(exc).__name__}: {exc}"})
            return
        connection.push({"type": "accepted", "id": request_id,
                         "jobs": len(jobs)})
        connection.open_requests += 1
        loop = self._loop

        def emit(index: int, row: dict, origin: str) -> None:
            loop.call_soon_threadsafe(connection.push, {
                "type": "row", "id": request_id, "index": index,
                "row": row, "origin": origin})

        def done() -> None:
            loop.call_soon_threadsafe(
                self._request_done, connection, request_id)

        self.scheduler.submit(jobs, emit, done)

    def _submit_monitor(self, connection: _Connection,
                        message: dict) -> None:
        """The ``monitor`` op: same accepted/row/done streaming as a
        submission, one row per trace."""
        self._request_counter += 1
        request_id = self._request_counter
        try:
            psm, traces, requirement = decode_monitor(message)
        except Exception as exc:
            connection.push({
                "type": "error", "id": request_id,
                "message": f"{type(exc).__name__}: {exc}"})
            return
        connection.push({"type": "accepted", "id": request_id,
                         "jobs": len(traces)})
        connection.open_requests += 1
        loop = self._loop

        def emit(index: int, row: dict, origin: str) -> None:
            loop.call_soon_threadsafe(connection.push, {
                "type": "row", "id": request_id, "index": index,
                "row": row, "origin": origin})

        def done() -> None:
            loop.call_soon_threadsafe(
                self._request_done, connection, request_id)

        self.scheduler.submit_monitor(psm, traces, requirement,
                                      emit, done)

    def _request_done(self, connection: _Connection,
                      request_id: int) -> None:
        self.requests_served += 1
        connection.open_requests -= 1
        connection.push({"type": "done", "id": request_id,
                         "stats": self.scheduler.stats()})
        if connection.reader_closed and connection.open_requests == 0:
            connection.push(_CLOSE)
