"""Warm worker pool: pre-forked processes that outlive their jobs.

The portfolio's process executor builds a fresh
``ProcessPoolExecutor`` per run — right for a batch tool, wrong for a
daemon, where fork + import cost would land on every request.
:class:`WarmWorkerPool` keeps workers alive across requests:

* **Pre-forked**: ``min_idle`` workers are spawned at construction
  (and re-spawned after retirements), so the first request after an
  idle stretch finds a warm process.
* **Recycled**: a worker retires after ``recycle_after_executions``
  jobs — the bound on leaked memory (interned zones, caches) any
  long-lived forked process accumulates.
* **Health-checked**: :meth:`health_check` pings idle workers and
  replaces the dead or wedged instead of letting them poison the
  pool; a worker that dies or stalls *mid-job* surfaces as
  :class:`WorkerDied` to exactly that job's caller (who turns it into
  a structured error row) and is replaced.

Workers run the portfolio's own job machinery
(:func:`repro.mc.portfolio._process_worker_run`), so rows coming out
of the pool are bit-identical to local runs.  Transport is one
duplex :func:`multiprocessing.Pipe` per worker; each job ships its
:class:`~repro.mc.portfolio._ProcessConfig` alongside the spec, so
one pool serves requests with different backends or abstractions.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Optional

from repro.mc.portfolio import (
    PortfolioResult,
    _process_worker_init,
    _process_worker_run,
)

__all__ = ["WarmWorker", "WarmWorkerPool", "WorkerDied"]


class WorkerDied(RuntimeError):
    """A worker process died or stopped responding mid-request.

    The job it carried is lost (the caller reports a structured error
    row); the pool replaces the worker, so one casualty never wedges
    the daemon.
    """


def _worker_main(conn) -> None:
    """Child-process loop: serve ``ping``/``run`` until EOF/``exit``.

    Every job re-applies its shipped engine config before running, so
    a single long-lived worker can serve requests with different
    backend/abstraction settings back to back.
    """
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if op == "ping":
            conn.send(("pong", os.getpid()))
        elif op == "run":
            config, spec = payload
            try:
                _process_worker_init(config)
                row = _process_worker_run(spec)
                conn.send(("row", row))
            except KeyboardInterrupt:
                return
            except BaseException as exc:
                # _process_worker_run already folds job failures into
                # error rows; reaching here means the machinery itself
                # (or result pickling) broke — report and stay alive.
                try:
                    conn.send(("failed",
                               f"{type(exc).__name__}: {exc}"))
                except Exception:
                    return
        elif op == "exit":
            return


class WarmWorker:
    """One pre-forked worker process plus its parent-side pipe."""

    def __init__(self, ctx):
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child,),
                                   daemon=True)
        self.process.start()
        child.close()
        #: Jobs this worker has completed (drives recycling).
        self.executions = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def request(self, message, timeout: float | None = None):
        """One round-trip; :class:`WorkerDied` on death or timeout."""
        try:
            self.conn.send(message)
            while not self.conn.poll(timeout):
                if timeout is not None:
                    raise WorkerDied(
                        f"worker {self.pid} unresponsive after "
                        f"{timeout}s")
            return self.conn.recv()
        except WorkerDied:
            raise
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerDied(
                f"worker {self.pid} died: {type(exc).__name__}"
            ) from exc

    def ping(self, timeout: float | None = 5.0) -> bool:
        try:
            op, _ = self.request(("ping", None), timeout)
        except WorkerDied:
            return False
        return op == "pong"

    def close(self, join_timeout: float = 2.0) -> None:
        """Retire the worker: polite exit, then escalate."""
        try:
            self.conn.send(("exit", None))
        except (OSError, BrokenPipeError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=join_timeout)
        if self.process.is_alive():  # pragma: no cover - stubborn
            self.process.kill()
            self.process.join(timeout=join_timeout)


class WarmWorkerPool:
    """A bounded pool of :class:`WarmWorker` with warm spares.

    ``size`` caps concurrent workers; ``min_idle`` (default: ``size``,
    i.e. fully pre-forked) is the number of warm spares maintained
    while below the cap; ``recycle_after_executions`` retires a
    worker after that many jobs; ``job_timeout`` bounds one job's
    wall time in a worker — exceeding it is treated as a wedged
    worker (killed, replaced, :class:`WorkerDied` to the caller).
    """

    def __init__(self, size: int, *,
                 min_idle: int | None = None,
                 recycle_after_executions: int | None = None,
                 job_timeout: float | None = None,
                 start_method: str | None = None):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if min_idle is None:
            min_idle = size
        if not 0 <= min_idle <= size:
            raise ValueError(
                f"min_idle must be in [0, size], got {min_idle}")
        if recycle_after_executions is not None \
                and recycle_after_executions < 1:
            raise ValueError("recycle_after_executions must be >= 1, "
                             f"got {recycle_after_executions}")
        if start_method is None:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._ctx = multiprocessing.get_context()
        else:
            self._ctx = multiprocessing.get_context(start_method)
        self.size = size
        self.min_idle = min_idle
        self.recycle_after_executions = recycle_after_executions
        self.job_timeout = job_timeout
        self._cv = threading.Condition()
        self._idle: list[WarmWorker] = []
        self._busy: set[WarmWorker] = set()
        self._closed = False
        #: Lifetime counters (exposed via :meth:`stats`).
        self.spawned = 0
        self.recycled = 0
        self.executions = 0
        with self._cv:
            self._replenish_locked()

    # -- internal ------------------------------------------------------
    def _spawn_locked(self) -> WarmWorker:
        worker = WarmWorker(self._ctx)
        self.spawned += 1
        return worker

    def _replenish_locked(self) -> None:
        """Keep ``min_idle`` warm spares while below the size cap."""
        while (not self._closed
               and len(self._idle) < self.min_idle
               and len(self._idle) + len(self._busy) < self.size):
            self._idle.append(self._spawn_locked())

    def _retire(self, worker: WarmWorker) -> None:
        self.recycled += 1
        worker.close()

    # -- pool API ------------------------------------------------------
    def acquire(self, timeout: float | None = None) -> WarmWorker:
        """Check out a live worker (spawning up to ``size``)."""
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is shut down")
                while self._idle:
                    worker = self._idle.pop()
                    if worker.process.is_alive():
                        self._busy.add(worker)
                        return worker
                    self._retire(worker)  # died while idle
                if len(self._busy) < self.size:
                    worker = self._spawn_locked()
                    self._busy.add(worker)
                    return worker
                if not self._cv.wait(timeout):
                    raise TimeoutError(
                        "no worker became available in time")

    def release(self, worker: WarmWorker, *,
                recycle: bool = False) -> None:
        """Return a worker; retired when asked, expired or dead."""
        limit = self.recycle_after_executions
        expired = limit is not None and worker.executions >= limit
        with self._cv:
            self._busy.discard(worker)
            if (recycle or expired or self._closed
                    or not worker.process.is_alive()):
                self._retire(worker)
            else:
                self._idle.append(worker)
            self._replenish_locked()
            self._cv.notify_all()

    def run(self, config, spec, *,
            timeout: float | None = None) -> PortfolioResult:
        """One job on a warm worker; :class:`WorkerDied` on casualty.

        ``timeout`` (default: the pool's ``job_timeout``) bounds the
        in-worker wall time; a worker that exceeds it is presumed
        wedged and replaced.
        """
        if timeout is None:
            timeout = self.job_timeout
        worker = self.acquire()
        recycle = False
        try:
            try:
                op, payload = worker.request(("run", (config, spec)),
                                             timeout)
            except WorkerDied:
                recycle = True
                raise
            worker.executions += 1
            self.executions += 1
            if op == "row":
                return payload
            # "failed": the job machinery broke but the worker lives;
            # anything else is protocol corruption — replace it.
            recycle = op != "failed"
            raise WorkerDied(f"worker {worker.pid} reported "
                             f"{op}: {payload}")
        finally:
            self.release(worker, recycle=recycle)

    def health_check(self, timeout: float | None = 5.0) -> int:
        """Ping idle workers; replace the dead/wedged.  Returns how
        many were replaced."""
        with self._cv:
            idle = list(self._idle)
        replaced = 0
        for worker in idle:
            if worker.ping(timeout):
                continue
            with self._cv:
                if worker in self._idle:
                    self._idle.remove(worker)
                    self._retire(worker)
                    replaced += 1
                    self._replenish_locked()
                    self._cv.notify_all()
        return replaced

    def stats(self) -> dict[str, int]:
        with self._cv:
            return {
                "size": self.size,
                "min_idle": self.min_idle,
                "idle": len(self._idle),
                "busy": len(self._busy),
                "spawned": self.spawned,
                "recycled": self.recycled,
                "executions": self.executions,
            }

    def shutdown(self) -> None:
        """Close every worker (idle and busy) and refuse new work."""
        with self._cv:
            self._closed = True
            workers = self._idle + list(self._busy)
            self._idle.clear()
            self._busy.clear()
            self._cv.notify_all()
        for worker in workers:
            worker.close()

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
