"""Fail-fast validation for the ``REPRO_*`` environment variables.

Every tunable of the library has an environment override —
``REPRO_ZONE_BACKEND``, ``REPRO_ABSTRACTION``, ``REPRO_JOBS``,
``REPRO_EXECUTOR`` — and each used to be parsed at *first use*, deep
inside an exploration, where a typo surfaced as a multi-frame
traceback out of a worker thread (or, under the process executor, out
of a worker process).  A long-running daemon makes this worse: the
first use may be minutes after startup, inside a client's request.

These helpers validate at *read* time and raise :class:`EnvVarError`
— a one-line :class:`ValueError` that names the variable, the
offending value and the allowed values — so ``REPRO_JOBS=two`` fails
the CLI (or the daemon boot) immediately with::

    REPRO_JOBS='two' is invalid: expected an integer >= 1

All resolution entry points (:func:`repro.zones.backend.resolve_backend`,
:func:`repro.ta.bounds.resolve_abstraction`,
:func:`repro.mc.parallel.resolve_jobs`,
:func:`repro.mc.portfolio.resolve_executor`) route their environment
reads through here.
"""

from __future__ import annotations

import os
from typing import Iterable

__all__ = ["EnvVarError", "env_choice", "env_int"]


class EnvVarError(ValueError):
    """An invalid ``REPRO_*`` value — the message is one line and
    names the variable, the value and what would have been accepted."""


def env_choice(var: str, allowed: Iterable[str], *,
               default: str | None = None) -> str | None:
    """Read ``var`` and require one of ``allowed`` (or unset/empty).

    Returns the raw (stripped) value, or ``default`` when the variable
    is unset or blank.  The value is *not* canonicalized — callers keep
    their own alias maps — but membership is checked here so an invalid
    value fails at read time, not at first use.
    """
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    choices = sorted(set(allowed))
    if raw not in choices:
        raise EnvVarError(
            f"{var}={raw!r} is invalid: choose from "
            f"{', '.join(choices)}")
    return raw


def env_int(var: str, *, minimum: int | None = None,
            default: int | None = None) -> int | None:
    """Read ``var`` as an integer (with an optional lower bound).

    Returns ``default`` when the variable is unset or blank; raises
    :class:`EnvVarError` on a non-integer or out-of-range value.
    """
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    bound = "an integer" if minimum is None \
        else f"an integer >= {minimum}"
    try:
        value = int(raw)
    except ValueError:
        raise EnvVarError(
            f"{var}={raw!r} is invalid: expected {bound}") from None
    if minimum is not None and value < minimum:
        raise EnvVarError(
            f"{var}={raw!r} is invalid: expected {bound}")
    return value
