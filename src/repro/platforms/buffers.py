"""IO-boundary transports: bounded FIFO buffers and shared variables.

Section III-B gives the code two ways to receive processed inputs (and
the output device two ways to receive outputs): a bounded **buffer**
— whose overflow behavior Constraints 2/3 reason about — or a
**shared variable**, where a write overwrites the previous value and
unread events are simply lost.

Both transports record their traffic in the trace (``enq``/``deq``/
``drop``) so the measured "Buffer Overflow" row of Table I falls out
of the same probe data as the delays.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["Transport", "EventBuffer", "SharedSlot"]


class Transport(Protocol):
    """What invokers and devices need from an io-boundary transport."""

    def push(self, tag: int) -> bool:
        """Insert an event; False when it was lost instead."""

    def pop_one(self) -> int | None:
        """Remove and return the oldest event, or None."""

    def pop_all(self) -> list[int]:
        """Remove and return all pending events, oldest first."""

    def __len__(self) -> int:
        """Number of pending events."""


class EventBuffer:
    """Bounded FIFO of event tags (the paper's buffer mechanism)."""

    def __init__(self, sim: Simulator, trace: TraceRecorder,
                 channel: str, capacity: int):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.sim = sim
        self.trace = trace
        self.channel = channel
        self.capacity = capacity
        self._items: deque[int] = deque()
        self.overflow_count = 0
        self.high_watermark = 0

    def push(self, tag: int) -> bool:
        if len(self._items) >= self.capacity:
            self.overflow_count += 1
            self.trace.record(self.sim.now, "drop", self.channel, tag,
                              note="buffer overflow")
            return False
        self._items.append(tag)
        self.high_watermark = max(self.high_watermark, len(self._items))
        self.trace.record(self.sim.now, "enq", self.channel, tag)
        return True

    def pop_one(self) -> int | None:
        if not self._items:
            return None
        tag = self._items.popleft()
        self.trace.record(self.sim.now, "deq", self.channel, tag)
        return tag

    def pop_all(self) -> list[int]:
        tags = []
        while self._items:
            tags.append(self.pop_one())
        return [t for t in tags if t is not None]

    def __len__(self) -> int:
        return len(self._items)


class SharedSlot:
    """Single-value shared variable: writes overwrite, reads consume.

    The "consume" on read models the fresh-flag idiom generated code
    uses with shared variables; a second read before the next write
    must not re-deliver the same event.
    """

    def __init__(self, sim: Simulator, trace: TraceRecorder, channel: str):
        self.sim = sim
        self.trace = trace
        self.channel = channel
        self._tag: int | None = None
        self.overwrite_count = 0

    def push(self, tag: int) -> bool:
        if self._tag is not None:
            self.overwrite_count += 1
            self.trace.record(self.sim.now, "drop", self.channel,
                              self._tag, note="shared-variable overwrite")
        self._tag = tag
        self.trace.record(self.sim.now, "enq", self.channel, tag,
                          note="shared")
        return True

    def pop_one(self) -> int | None:
        tag = self._tag
        if tag is None:
            return None
        self._tag = None
        self.trace.record(self.sim.now, "deq", self.channel, tag,
                          note="shared")
        return tag

    def pop_all(self) -> list[int]:
        tag = self.pop_one()
        return [] if tag is None else [tag]

    def __len__(self) -> int:
        return 0 if self._tag is None else 1
