"""Platform simulator: devices, transports, invocation, composition."""

from repro.platforms.buffers import EventBuffer, SharedSlot, Transport
from repro.platforms.devices import (
    InterruptInputDevice,
    OutputDevice,
    PollingInputDevice,
)
from repro.platforms.faults import FaultInjector
from repro.platforms.invocation import (
    AperiodicInvoker,
    CodeExecutionHost,
    InputPort,
    OutputPort,
    PeriodicInvoker,
)
from repro.platforms.signals import SignalLine
from repro.platforms.system import ImplementedSystem, PlatformStats

__all__ = [
    "AperiodicInvoker",
    "CodeExecutionHost",
    "EventBuffer",
    "FaultInjector",
    "ImplementedSystem",
    "InputPort",
    "InterruptInputDevice",
    "OutputDevice",
    "OutputPort",
    "PeriodicInvoker",
    "PlatformStats",
    "PollingInputDevice",
    "SharedSlot",
    "SignalLine",
    "Transport",
]
