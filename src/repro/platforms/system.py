"""The implemented system ``Code(PIM) ‖_imp IS`` (Fig. 2-(a)).

:class:`ImplementedSystem` wires a generated controller to a full
platform according to an
:class:`~repro.core.scheme.ImplementationScheme`: one Input-Device and
io-transport per monitored channel, one io-transport and Output-Device
per controlled channel, and an invoker for the Code-Execution block.
The environment talks to it through two methods only — mirroring the
mc-boundary:

* :meth:`signal_input` — raise a monitored variable (``m``),
* the ``observe`` callback — a controlled variable changed (``c``).

Every boundary crossing lands in one shared
:class:`~repro.sim.trace.TraceRecorder`; delays and overflow counts
are *derived* from the trace afterwards, like the paper derives them
from oscilloscope captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.codegen.runtime import Controller
from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InvocationKind,
    ReadMechanism,
)
from repro.platforms.buffers import EventBuffer, SharedSlot, Transport
from repro.platforms.devices import (
    InterruptInputDevice,
    OutputDevice,
    PollingInputDevice,
)
from repro.platforms.faults import FaultInjector
from repro.platforms.invocation import (
    AperiodicInvoker,
    CodeExecutionHost,
    InputPort,
    OutputPort,
    PeriodicInvoker,
)
from repro.platforms.signals import SignalLine
from repro.sim.engine import Simulator, ms_to_us
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

__all__ = ["ImplementedSystem", "PlatformStats"]


@dataclass
class PlatformStats:
    """Post-run health counters (feeds Table I's overflow row)."""

    input_buffer_overflows: int = 0
    output_buffer_overflows: int = 0
    shared_variable_overwrites: int = 0
    missed_signals: int = 0
    isr_overlaps: int = 0
    invocations: int = 0
    invocation_overruns: int = 0
    dropped_by_code: int = 0
    buffer_high_watermarks: dict[str, int] = field(default_factory=dict)
    #: Fault-injection counters (zero unless a FaultSpec axis is on).
    injected_message_losses: int = 0
    injected_replica_faults: int = 0
    injected_preemption_bursts: int = 0

    @property
    def any_buffer_overflow(self) -> bool:
        return (self.input_buffer_overflows
                + self.output_buffer_overflows) > 0

    def summary(self) -> str:
        return (
            f"invocations={self.invocations} "
            f"(overruns={self.invocation_overruns}), "
            f"in-overflow={self.input_buffer_overflows}, "
            f"out-overflow={self.output_buffer_overflows}, "
            f"overwrites={self.shared_variable_overwrites}, "
            f"missed-signals={self.missed_signals}, "
            f"isr-overlaps={self.isr_overlaps}, "
            f"code-dropped={self.dropped_by_code}"
            + (f", injected-losses={self.injected_message_losses}, "
               f"injected-replica-faults={self.injected_replica_faults},"
               f" injected-preemptions={self.injected_preemption_bursts}"
               if (self.injected_message_losses
                   or self.injected_replica_faults
                   or self.injected_preemption_bursts) else ""))


class ImplementedSystem:
    """A controller executing on a scheme-configured platform."""

    def __init__(
        self,
        controller: Controller,
        scheme: ImplementationScheme,
        input_channels: Sequence[str],
        output_channels: Sequence[str],
        *,
        seed: int = 0,
        observe: Callable[[str, int], None] | None = None,
    ):
        scheme.validate()
        scheme.covers(input_channels, output_channels)
        self.scheme = scheme
        self.sim = Simulator()
        self.rng = RandomStreams(seed)
        self.trace = TraceRecorder()
        self.controller = controller
        self._observe = observe
        self._started = False

        # ---- concrete fault injection --------------------------------
        injector = FaultInjector(self.rng, scheme.faults,
                                 scheme.invocation)
        self.injector: FaultInjector | None = \
            injector if injector.active else None

        # ---- io transports -------------------------------------------
        self._input_buffers: dict[str, EventBuffer] = {}
        self._output_buffers: dict[str, EventBuffer] = {}
        self._shared_slots: dict[str, SharedSlot] = {}
        input_ports: list[InputPort] = []
        for channel in input_channels:
            io_spec = scheme.io_input_spec(channel)
            transport = self._make_transport(channel, io_spec.delivery,
                                             io_spec.buffer_size,
                                             is_input=True)
            input_ports.append(InputPort(channel, transport, io_spec))

        # ---- output devices ------------------------------------------
        output_ports: list[OutputPort] = []
        self.output_devices: dict[str, OutputDevice] = {}
        for channel in output_channels:
            io_spec = scheme.io_output_spec(channel)
            transport = self._make_transport(channel, io_spec.delivery,
                                             io_spec.buffer_size,
                                             is_input=False)
            device = OutputDevice(
                self.sim, self.rng, self.trace, channel,
                scheme.output_spec(channel), transport,
                actuate=lambda tag, ch=channel: self._actuate(ch, tag),
                injector=self.injector)
            self.output_devices[channel] = device
            output_ports.append(OutputPort(channel, transport, io_spec,
                                           notify=device.notify))

        # ---- code execution ------------------------------------------
        self.host = CodeExecutionHost(
            self.sim, self.rng, self.trace, controller,
            scheme.invocation, input_ports, output_ports,
            injector=self.injector)
        if scheme.invocation.kind in (InvocationKind.PERIODIC,
                                      InvocationKind.PREEMPTIVE):
            assert scheme.invocation.period is not None
            self.invoker = PeriodicInvoker(
                self.sim, self.host, scheme.invocation.period,
                injector=self.injector)
            notify_invoker: Callable[[], None] | None = None
        else:
            aperiodic = AperiodicInvoker(self.sim, self.rng, self.host,
                                         scheme.invocation)
            self.invoker = aperiodic
            notify_invoker = aperiodic.notify_input

        # ---- input devices -------------------------------------------
        self.input_devices: dict[str, object] = {}
        self.signal_lines: dict[str, SignalLine] = {}
        for port in input_ports:
            channel = port.channel
            spec = scheme.input_spec(channel)
            if spec.mechanism is ReadMechanism.INTERRUPT:
                self.input_devices[channel] = InterruptInputDevice(
                    self.sim, self.rng, self.trace, channel, spec,
                    port.transport, on_delivered=notify_invoker,
                    injector=self.injector)
            else:
                line = SignalLine(
                    self.sim, channel, spec.signal,
                    sustain_us=ms_to_us(spec.sustain)
                    if spec.sustain else None)
                self.signal_lines[channel] = line
                self.input_devices[channel] = PollingInputDevice(
                    self.sim, self.rng, self.trace, channel, spec,
                    port.transport, line, on_delivered=notify_invoker,
                    injector=self.injector)

    # ------------------------------------------------------------------
    def _make_transport(self, channel: str,
                        delivery: DeliveryMechanism,
                        buffer_size: int, *, is_input: bool) -> Transport:
        if delivery is DeliveryMechanism.BUFFER:
            buffer = EventBuffer(self.sim, self.trace, channel,
                                 buffer_size)
            if is_input:
                self._input_buffers[channel] = buffer
            else:
                self._output_buffers[channel] = buffer
            return buffer
        slot = SharedSlot(self.sim, self.trace, channel)
        self._shared_slots[channel] = slot
        return slot

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm devices and the invoker (idempotence guarded)."""
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for device in self.input_devices.values():
            if isinstance(device, PollingInputDevice):
                device.start()
        for device in self.output_devices.values():
            device.start()
        self.invoker.start()

    def attach_observer(self,
                        observe: Callable[[str, int], None]) -> None:
        """Register the environment's actuation callback (at most one)."""
        if self._observe is not None:
            raise RuntimeError("system already has an observer attached")
        self._observe = observe

    def signal_input(self, channel: str, tag: int) -> None:
        """The environment raises monitored variable ``channel``."""
        self.trace.record(self.sim.now, "m", channel, tag)
        device = self.input_devices[channel]
        if isinstance(device, InterruptInputDevice):
            device.on_signal(tag)
        else:
            self.signal_lines[channel].raise_signal(tag)

    def _actuate(self, channel: str, tag: int) -> None:
        self.trace.record(self.sim.now, "c", channel, tag)
        if self._observe is not None:
            self._observe(channel, tag)

    def run_for(self, duration_ms: float) -> None:
        """Advance simulated time by ``duration_ms``."""
        self.sim.run_until(self.sim.now + ms_to_us(duration_ms))

    # ------------------------------------------------------------------
    def stats(self) -> PlatformStats:
        stats = PlatformStats()
        for name, buffer in self._input_buffers.items():
            stats.input_buffer_overflows += buffer.overflow_count
            stats.buffer_high_watermarks[name] = buffer.high_watermark
        for name, buffer in self._output_buffers.items():
            stats.output_buffer_overflows += buffer.overflow_count
            stats.buffer_high_watermarks[name] = buffer.high_watermark
        for slot in self._shared_slots.values():
            stats.shared_variable_overwrites += slot.overwrite_count
        for line in self.signal_lines.values():
            stats.missed_signals += line.missed
        for device in self.input_devices.values():
            if isinstance(device, InterruptInputDevice):
                stats.isr_overlaps += device.overlapped
        stats.invocations = self.host.invocations
        stats.invocation_overruns = self.host.overruns
        stats.dropped_by_code = sum(
            1 for e in self.trace
            if e.kind == "drop" and e.note == "unconsumed by code")
        if self.injector is not None:
            stats.injected_message_losses = sum(
                self.injector.message_losses.values())
            stats.injected_replica_faults = self.injector.replica_faults
            stats.injected_preemption_bursts = \
                self.injector.preemption_bursts
        return stats
