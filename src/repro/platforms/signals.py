"""Signal lines between the environment and the Input-Device.

For interrupt-driven inputs the environment calls straight into the
device (an edge fires the ISR).  For polled inputs the environment
instead sets the state of a :class:`SignalLine` and the device samples
it at its polling instants — which is exactly where the paper's
signal-type taxonomy (Section III-A) bites:

* **pulse** signals have no duration and are *never* seen by a poll;
* **sustained** signals are visible for a fixed window after the edge
  (a poll landing inside the window sees it once — edge detection);
* **latched** signals stay set until a sample consumes the latch.

Missed and overwritten events are counted so Constraint 1 ("detection
of all input signals") can be checked against the simulation, not just
the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheme import SignalType
from repro.sim.engine import Simulator

__all__ = ["SignalLine"]


@dataclass
class _Activation:
    tag: int
    start_us: int
    end_us: int | None  # None = until read (latched)
    reported: bool = False


class SignalLine:
    """Sampled input line with pulse/sustained/latched semantics."""

    def __init__(self, sim: Simulator, channel: str,
                 signal: SignalType, sustain_us: int | None = None):
        self.sim = sim
        self.channel = channel
        self.signal = signal
        self.sustain_us = sustain_us
        self._current: _Activation | None = None
        #: Signals that expired or were overwritten before being sampled.
        self.missed_tags: list[int] = []

    # ------------------------------------------------------------------
    def raise_signal(self, tag: int) -> None:
        """The environment drives an edge on this line *now*."""
        now = self.sim.now
        self._expire(now)
        if self._current is not None and not self._current.reported:
            # Previous activation still pending: the new edge overwrites
            # it (hardware latch width is one event).
            self.missed_tags.append(self._current.tag)
        if self.signal is SignalType.PULSE:
            # Zero-width: visible only at this exact instant; a poll at
            # the same instant is a measure-zero coincidence we do not
            # model, so the pulse is recorded as missed immediately.
            self.missed_tags.append(tag)
            self._current = None
        elif self.signal is SignalType.SUSTAINED:
            assert self.sustain_us is not None
            self._current = _Activation(tag, now, now + self.sustain_us)
        else:  # LATCHED
            self._current = _Activation(tag, now, None)

    # ------------------------------------------------------------------
    def sample(self) -> int | None:
        """A device poll: returns the pending tag once, or None."""
        now = self.sim.now
        self._expire(now)
        active = self._current
        if active is None or active.reported:
            return None
        if active.end_us is not None and now > active.end_us:
            return None
        active.reported = True
        if self.signal is SignalType.LATCHED:
            # Reading clears the latch.
            self._current = None
        return active.tag

    def _expire(self, now: int) -> None:
        active = self._current
        if active is None:
            return
        if active.end_us is not None and now > active.end_us:
            if not active.reported:
                self.missed_tags.append(active.tag)
            self._current = None

    # ------------------------------------------------------------------
    @property
    def missed(self) -> int:
        return len(self.missed_tags)
