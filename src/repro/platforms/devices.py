"""Input and Output Devices (the mc-boundary blocks of Fig. 2-(a)).

An **Input-Device** turns an environmental signal on a monitored
variable into a processed program input: interrupt devices react to
the edge itself (ISR latency in [delay_min, delay_max]); polling
devices sample a :class:`~repro.platforms.signals.SignalLine` every
``polling_interval`` and then process.  Either way the processed
event is pushed into the channel's io-boundary transport.

An **Output-Device** does the reverse: it picks up outputs the code
wrote to the o-side transport — immediately (event-driven) or at its
own polling cadence — processes them for [delay_min, delay_max], and
actuates, making the controlled variable visible to the environment.
"""

from __future__ import annotations

from typing import Callable

from repro.core.scheme import InputSpec, OutputSpec, ReadMechanism
from repro.platforms.buffers import Transport
from repro.platforms.faults import FaultInjector
from repro.platforms.signals import SignalLine
from repro.sim.engine import Simulator, ms_to_us
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

__all__ = [
    "InterruptInputDevice",
    "PollingInputDevice",
    "OutputDevice",
]


class InterruptInputDevice:
    """ISR-driven sensing: every edge is caught, processed, delivered."""

    def __init__(self, sim: Simulator, rng: RandomStreams,
                 trace: TraceRecorder, channel: str, spec: InputSpec,
                 sink: Transport,
                 on_delivered: Callable[[], None] | None = None,
                 injector: FaultInjector | None = None):
        if spec.mechanism is not ReadMechanism.INTERRUPT:
            raise ValueError(
                f"{channel}: InterruptInputDevice needs an interrupt spec")
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.channel = channel
        self.spec = spec
        self.sink = sink
        self.on_delivered = on_delivered
        self.injector = injector
        #: Edges arriving while a previous one is still processing —
        #: Constraint 1(2) requires this to stay at zero.
        self.overlapped = 0
        self._busy_until = -1

    def on_signal(self, tag: int) -> None:
        now = self.sim.now
        self.trace.record(now, "sensed", self.channel, tag,
                          note="interrupt")
        if now < self._busy_until:
            self.overlapped += 1
        delay = self.rng.uniform_int(
            f"in:{self.channel}",
            ms_to_us(self.spec.delay_min), ms_to_us(self.spec.delay_max))
        self._busy_until = max(self._busy_until, now + delay)

        def deliver() -> None:
            if (self.injector is not None
                    and self.injector.lose_delivery(self.channel)):
                # Lost in transit: re-execute the processing window,
                # mirroring the symbolic retry edge in the IFMI.
                self.trace.record(self.sim.now, "fault", self.channel,
                                  tag, note="loss")
                redo = self.rng.uniform_int(
                    f"in:{self.channel}",
                    ms_to_us(self.spec.delay_min),
                    ms_to_us(self.spec.delay_max))
                self._busy_until = max(self._busy_until,
                                       self.sim.now + redo)
                self.sim.schedule(redo, deliver,
                                  label=f"isr:{self.channel}")
                return
            self.trace.record(self.sim.now, "i_ready", self.channel, tag)
            self.sink.push(tag)
            if self.on_delivered is not None:
                self.on_delivered()

        self.sim.schedule(delay, deliver, label=f"isr:{self.channel}")


class PollingInputDevice:
    """Periodic sampling of a signal line, then processing."""

    def __init__(self, sim: Simulator, rng: RandomStreams,
                 trace: TraceRecorder, channel: str, spec: InputSpec,
                 sink: Transport, line: SignalLine,
                 on_delivered: Callable[[], None] | None = None,
                 offset_us: int = 0,
                 injector: FaultInjector | None = None):
        if spec.mechanism is not ReadMechanism.POLLING:
            raise ValueError(
                f"{channel}: PollingInputDevice needs a polling spec")
        assert spec.polling_interval is not None
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.channel = channel
        self.spec = spec
        self.sink = sink
        self.line = line
        self.on_delivered = on_delivered
        self.injector = injector
        self.interval_us = ms_to_us(spec.polling_interval)
        self.polls = 0
        self._started = False
        self._offset_us = offset_us

    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"{self.channel}: device already started")
        self._started = True
        self.sim.schedule(self._offset_us, self._poll,
                          label=f"poll:{self.channel}")

    def _poll(self) -> None:
        self.polls += 1
        tag = self.line.sample()
        if tag is not None:
            now = self.sim.now
            self.trace.record(now, "sensed", self.channel, tag,
                              note="poll")
            delay = self.rng.uniform_int(
                f"in:{self.channel}",
                ms_to_us(self.spec.delay_min),
                ms_to_us(self.spec.delay_max))

            def deliver(tag=tag) -> None:
                if (self.injector is not None
                        and self.injector.lose_delivery(self.channel)):
                    self.trace.record(self.sim.now, "fault",
                                      self.channel, tag, note="loss")
                    redo = self.rng.uniform_int(
                        f"in:{self.channel}",
                        ms_to_us(self.spec.delay_min),
                        ms_to_us(self.spec.delay_max))
                    self.sim.schedule(redo, deliver,
                                      label=f"proc:{self.channel}")
                    return
                self.trace.record(self.sim.now, "i_ready", self.channel,
                                  tag)
                self.sink.push(tag)
                if self.on_delivered is not None:
                    self.on_delivered()

            self.sim.schedule(delay, deliver,
                              label=f"proc:{self.channel}")
        gap = self.interval_us
        if self.injector is not None:
            gap = self.injector.jittered_us(f"poll:{self.channel}", gap)
        self.sim.schedule(gap, self._poll,
                          label=f"poll:{self.channel}")


class OutputDevice:
    """Drains the o-side transport and actuates toward the environment.

    ``actuate(tag)`` is called when the controlled variable changes —
    the environment's observation point (trace kind ``c`` is recorded
    by the environment, not here, so the device stays reusable).
    """

    def __init__(self, sim: Simulator, rng: RandomStreams,
                 trace: TraceRecorder, channel: str, spec: OutputSpec,
                 source: Transport, actuate: Callable[[int], None],
                 offset_us: int = 0,
                 injector: FaultInjector | None = None):
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.channel = channel
        self.spec = spec
        self.source = source
        self.actuate = actuate
        self.injector = injector
        self._busy = False
        self._started = False
        self._offset_us = offset_us

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin polling (no-op for event-driven devices)."""
        if self._started:
            raise RuntimeError(f"{self.channel}: device already started")
        self._started = True
        if self.spec.mechanism is ReadMechanism.POLLING:
            assert self.spec.polling_interval is not None
            self.sim.schedule(self._offset_us, self._poll,
                              label=f"outpoll:{self.channel}")

    def notify(self) -> None:
        """The code wrote an output (event-driven pickup path)."""
        if self.spec.mechanism is ReadMechanism.INTERRUPT and not self._busy:
            self._drain_next()

    # ------------------------------------------------------------------
    def _poll(self) -> None:
        # Each poll picks up everything pending; items are processed
        # with independent delays measured from the poll instant.
        for tag in self.source.pop_all():
            self._process(tag)
        assert self.spec.polling_interval is not None
        gap = ms_to_us(self.spec.polling_interval)
        if self.injector is not None:
            gap = self.injector.jittered_us(f"outpoll:{self.channel}",
                                            gap)
        self.sim.schedule(gap, self._poll,
                          label=f"outpoll:{self.channel}")

    def _drain_next(self) -> None:
        tag = self.source.pop_one()
        if tag is None:
            self._busy = False
            return
        self._busy = True
        self._process(tag, then=self._drain_next)

    def _process(self, tag: int,
                 then: Callable[[], None] | None = None) -> None:
        self.trace.record(self.sim.now, "o_pickup", self.channel, tag)
        delay = self.rng.uniform_int(
            f"out:{self.channel}",
            ms_to_us(self.spec.delay_min), ms_to_us(self.spec.delay_max))

        def finish() -> None:
            self.actuate(tag)
            if then is not None:
                then()

        self.sim.schedule(delay, finish, label=f"actuate:{self.channel}")
