"""Code-Execution block: invoking ``Code(PIM)`` (Fig. 2-(a) center).

The host implements the four-step interaction loop of Section II-A.
On each invocation it drains the input transports according to the
per-channel read policy (read-one / read-all), runs the controller's
step function at the invocation instant, and — after a sampled
execution time in [bcet, wcet] — writes the produced outputs into the
output transports and notifies event-driven output devices.

Two invokers drive the host:

* :class:`PeriodicInvoker` — fixed-period ticks (IS1's mechanism);
* :class:`AperiodicInvoker` — an invocation is scheduled whenever an
  input device delivers, after a scheduling latency, respecting a
  minimum separation between runs.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.codegen.runtime import Controller
from repro.core.scheme import (
    InvocationKind,
    InvocationSpec,
    IOSpec,
    ReadPolicy,
)
from repro.platforms.buffers import Transport
from repro.platforms.faults import FaultInjector
from repro.sim.engine import Simulator, ms_to_us, us_to_ms
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

__all__ = [
    "InputPort",
    "OutputPort",
    "CodeExecutionHost",
    "PeriodicInvoker",
    "AperiodicInvoker",
]


@dataclass
class InputPort:
    """One io-boundary input: transport plus its read policy."""

    channel: str
    transport: Transport
    spec: IOSpec


@dataclass
class OutputPort:
    """One io-boundary output: transport plus the device to notify."""

    channel: str
    transport: Transport
    spec: IOSpec
    notify: Callable[[], None] | None = None


class CodeExecutionHost:
    """Runs the generated controller under an invocation spec."""

    def __init__(self, sim: Simulator, rng: RandomStreams,
                 trace: TraceRecorder, controller: Controller,
                 invocation: InvocationSpec,
                 input_ports: list[InputPort],
                 output_ports: list[OutputPort],
                 injector: FaultInjector | None = None):
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.controller = controller
        self.invocation = invocation
        self.input_ports = input_ports
        self.output_ports = {port.channel: port for port in output_ports}
        self.injector = injector
        self.invocations = 0
        #: Invocations requested while the previous one still ran.
        self.overruns = 0
        self._busy_until = -1
        self._output_ids = itertools.count(1)
        self.controller.reset(us_to_ms(sim.now))

    # ------------------------------------------------------------------
    def invoke(self) -> None:
        now = self.sim.now
        if now < self._busy_until:
            self.overruns += 1
        self.invocations += 1
        self.trace.record(now, "invoke", "code", None,
                          note=f"#{self.invocations}")

        # Step 2: read inputs per the io-boundary read policies.
        inputs: list[str] = []
        delivered: dict[str, deque[int]] = {}
        for port in self.input_ports:
            if port.spec.read_policy is ReadPolicy.READ_ALL:
                tags = port.transport.pop_all()
            else:
                tag = port.transport.pop_one()
                tags = [] if tag is None else [tag]
            if tags:
                delivered.setdefault(port.channel, deque()).extend(tags)
                inputs.extend([port.channel] * len(tags))

        # Step 3: compute transitions at the invocation instant.
        result = self.controller.step(us_to_ms(now), inputs)

        for channel in result.consumed:
            tag = delivered[channel].popleft()
            self.trace.record(now, "i_read", channel, tag)
        for channel in result.dropped:
            tag = delivered[channel].popleft()
            self.trace.record(now, "drop", channel, tag,
                              note="unconsumed by code")

        # Step 4: write outputs when the execution completes.
        exec_us = self.rng.uniform_int(
            "exec", ms_to_us(self.invocation.bcet),
            ms_to_us(self.invocation.wcet))
        if self.injector is not None:
            before = exec_us
            exec_us = self.injector.adjust_execution_us(
                exec_us, ms_to_us(self.invocation.bcet),
                ms_to_us(self.invocation.wcet))
            if exec_us != before:
                self.trace.record(now, "fault", "code", None,
                                  note=f"exec {us_to_ms(before)}→"
                                       f"{us_to_ms(exec_us)}ms")
        self._busy_until = now + exec_us
        outputs = list(result.outputs)
        if outputs:
            self.sim.schedule(exec_us, lambda: self._write_outputs(outputs),
                              label="write-outputs")

    def _write_outputs(self, outputs: list[str]) -> None:
        now = self.sim.now
        for channel in outputs:
            port = self.output_ports.get(channel)
            if port is None:
                raise KeyError(
                    f"controller emitted {channel!r} but the platform has "
                    f"no output port for it")
            tag = next(self._output_ids)
            self.trace.record(now, "o_write", channel, tag)
            port.transport.push(tag)
            if port.notify is not None:
                port.notify()


class PeriodicInvoker:
    """Fixed-period invocation (IS1)."""

    def __init__(self, sim: Simulator, host: CodeExecutionHost,
                 period_ms: int, offset_us: int = 0,
                 injector: FaultInjector | None = None):
        if period_ms <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.host = host
        self.period_us = ms_to_us(period_ms)
        self.offset_us = offset_us
        self.injector = injector
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("invoker already started")
        self._started = True
        self.sim.schedule(self.offset_us, self._tick, label="invoke")

    def _tick(self) -> None:
        self.host.invoke()
        gap = self.period_us
        if self.injector is not None:
            gap = self.injector.jittered_us("tick", gap)
        self.sim.schedule(gap, self._tick, label="invoke")


class AperiodicInvoker:
    """Event-triggered invocation with scheduling latency.

    Input devices call :meth:`notify_input` after delivering an event;
    an invocation is then scheduled ``latency`` later, but never
    before ``min_separation`` has elapsed since the previous start.
    Notifications arriving while an invocation is already pending
    coalesce into it (the pending run will see the new input too).
    """

    def __init__(self, sim: Simulator, rng: RandomStreams,
                 host: CodeExecutionHost, spec: InvocationSpec):
        if spec.kind is not InvocationKind.APERIODIC:
            raise ValueError("AperiodicInvoker needs an aperiodic spec")
        self.sim = sim
        self.rng = rng
        self.host = host
        self.spec = spec
        self._pending = False
        self._last_start = -ms_to_us(spec.min_separation)

    def start(self) -> None:
        """Nothing to arm — invocations are input-driven."""

    def notify_input(self) -> None:
        if self._pending:
            return
        self._pending = True
        latency = self.rng.uniform_int(
            "sched", ms_to_us(self.spec.latency_min),
            ms_to_us(self.spec.latency_max))
        earliest = self._last_start + ms_to_us(self.spec.min_separation)
        start_at = max(self.sim.now + latency, earliest)
        self.sim.schedule_at(start_at, self._run, label="invoke")

    def _run(self) -> None:
        self._pending = False
        self._last_start = self.sim.now
        self.host.invoke()
