"""Fault-injection platform automata and concrete fault injection.

The symbolic half builds the platform automata that realize a
:class:`~repro.core.scheme.FaultSpec` (and the ``PREEMPTIVE``
invocation kind) inside the PSM — see ``docs/FAULTS.md`` for the
automata shapes and the soundness argument:

* **replication with voting** — one ``REPLICA_i`` automaton per
  replica plus a ``VOTER`` counting agreement into ``exe_votes``; the
  EXEIO completion guard waits for the quorum;
* **fixed-priority preemption** — a ``SCHED`` automaton that may
  suspend the running invocation up to ``preemptions`` times, each
  burst lasting [``preempt_min``, ``preempt_max``] ms.

(The lossy-channel retry edges live inside the IFMI builders in
:mod:`repro.core.interfaces`; jitter widens the periodic guards in
place.)

The concrete half, :class:`FaultInjector`, mirrors the same axes in
the discrete-event simulation with seeded
:class:`~repro.sim.rng.RandomStreams` draws, so simulated traces
cross-validate the symbolic verdicts.  All injector streams are new
names (``fault:*``) — with faults disabled no stream is ever touched
and every existing draw is reproduced bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheme import FaultSpec, InvocationKind, InvocationSpec
from repro.sim.engine import ms_to_us
from repro.sim.rng import RandomStreams
from repro.ta.builder import AutomatonBuilder
from repro.ta.model import Automaton

__all__ = [
    "CSTART_CHANNEL",
    "PREEMPT_CHANNEL",
    "RESUME_CHANNEL",
    "VOTE_CHANNEL",
    "VOTES_VAR",
    "REPLICA_FAULTS_VAR",
    "SCHED_NAME",
    "VOTER_NAME",
    "FaultInjector",
    "ReplicaParts",
    "build_replicas_and_voter",
    "build_scheduler",
    "replica_name",
    "replica_start_channel",
]

#: Vote tally the EXEIO completion guard reads (reset at launch).
VOTES_VAR = "exe_votes"
#: Shared replica re-execution budget (the scheme's ``max_losses``).
REPLICA_FAULTS_VAR = "exe_rfaults"
#: Channel a replica emits when its execution round completes.
VOTE_CHANNEL = "exe_vote"
#: Compute-start handshake between EXEIO and the scheduler.
CSTART_CHANNEL = "exe_cstart"
#: Scheduler suspends the running invocation.
PREEMPT_CHANNEL = "exe_preempt"
#: Scheduler resumes the suspended invocation.
RESUME_CHANNEL = "exe_resume"

VOTER_NAME = "VOTER"
SCHED_NAME = "SCHED"


def replica_name(index: int) -> str:
    """Automaton name of replica ``index`` (1-based)."""
    return f"REPLICA_{index}"


def replica_start_channel(index: int) -> str:
    """Restart channel of replica ``index`` (1-based)."""
    return f"exe_rstart_{index}"


@dataclass(frozen=True)
class ReplicaParts:
    """Replication automata plus their network declarations."""

    automata: tuple[Automaton, ...]
    channels: tuple[str, ...]
    #: ``(name, hi)`` integer variables the transform must declare.
    int_vars: tuple[tuple[str, int], ...]


def build_replicas_and_voter(inv: InvocationSpec,
                             faults: FaultSpec) -> ReplicaParts:
    """``r`` replica invocation automata plus the majority voter.

    Each replica runs one execution round per restart (clock ``re`` in
    [bcet, wcet]) and then votes.  A restart (``exe_rstart_i``) aborts
    a straggling round from a previous invocation.  While the shared
    budget ``exe_rfaults`` lasts, a running round may fault and
    re-execute from scratch — delaying that replica's vote by up to
    one wcet per fault.  The voter only counts: the quorum test lives
    in EXEIO's completion guard so the count is part of the global
    state the model checker sees.
    """
    automata: list[Automaton] = []
    for i in range(1, faults.replicas + 1):
        start = replica_start_channel(i)
        b = AutomatonBuilder(replica_name(i), clocks=["re"])
        b.location("Ready", initial=True)
        b.location("Run", invariant=f"re <= {inv.wcet}")
        b.edge("Ready", "Run", sync=f"{start}?", update="re = 0")
        b.edge("Run", "Run", sync=f"{start}?", update="re = 0")
        if faults.max_losses > 0:
            b.edge("Run", "Run",
                   guard=(f"{REPLICA_FAULTS_VAR} < "
                          f"{faults.max_losses}"),
                   update=(f"{REPLICA_FAULTS_VAR} = "
                           f"{REPLICA_FAULTS_VAR} + 1, re = 0"))
        b.edge("Run", "Ready", guard=f"re >= {inv.bcet}",
               sync=f"{VOTE_CHANNEL}!")
        automata.append(b.build())

    voter = AutomatonBuilder(VOTER_NAME)
    voter.location("Collect", initial=True)
    voter.edge("Collect", "Collect", sync=f"{VOTE_CHANNEL}?",
               update=f"{VOTES_VAR} = {VOTES_VAR} + 1")
    automata.append(voter.build())

    channels = tuple(replica_start_channel(i)
                     for i in range(1, faults.replicas + 1))
    channels += (VOTE_CHANNEL,)
    int_vars: list[tuple[str, int]] = [(VOTES_VAR, faults.replicas)]
    if faults.max_losses > 0:
        int_vars.append((REPLICA_FAULTS_VAR, faults.max_losses))
    return ReplicaParts(automata=tuple(automata), channels=channels,
                        int_vars=tuple(int_vars))


def build_scheduler(inv: InvocationSpec) -> Automaton:
    """The fixed-priority interference source for ``PREEMPTIVE``.

    ``Watch_j`` counts bursts already delivered to the current
    invocation; from there the scheduler may — at any moment, which is
    what makes the interference worst-case — preempt the running code
    into ``Busy_{j+1}`` for [preempt_min, preempt_max] ms before
    resuming it.  Every compute start (``exe_cstart``) rewinds the
    burst counter, giving each invocation the full budget.
    """
    b = AutomatonBuilder(SCHED_NAME, clocks=["h"])
    bursts = inv.preemptions
    for j in range(bursts + 1):
        b.location(f"Watch_{j}", initial=(j == 0))
    for j in range(1, bursts + 1):
        b.location(f"Busy_{j}", invariant=f"h <= {inv.preempt_max}")
    for j in range(bursts):
        b.edge(f"Watch_{j}", f"Busy_{j + 1}",
               sync=f"{PREEMPT_CHANNEL}!", update="h = 0")
        b.edge(f"Busy_{j + 1}", f"Watch_{j + 1}",
               guard=f"h >= {inv.preempt_min}",
               sync=f"{RESUME_CHANNEL}!")
    for j in range(bursts + 1):
        b.edge(f"Watch_{j}", "Watch_0", sync=f"{CSTART_CHANNEL}?")
    return b.build()


# ----------------------------------------------------------------------
# Concrete (simulation-side) fault injection
# ----------------------------------------------------------------------
@dataclass
class FaultInjector:
    """Seeded concrete fault injection for :class:`ImplementedSystem`.

    One injector per system run; devices and the execution host
    consult it at each decision point.  Every stochastic choice draws
    from a dedicated ``fault:*`` stream, so enabling an axis never
    perturbs the draws of any pre-existing stream (the repo's
    reproducibility contract), and runs are deterministic per seed.
    """

    rng: RandomStreams
    faults: FaultSpec
    invocation: InvocationSpec
    #: Deliveries dropped in transit, per input channel.
    message_losses: dict[str, int] = field(default_factory=dict)
    #: Replica execution rounds that faulted and re-executed.
    replica_faults: int = 0
    #: Interference bursts applied to invocations.
    preemption_bursts: int = 0

    @property
    def active(self) -> bool:
        return (self.faults.enabled
                or self.invocation.kind is InvocationKind.PREEMPTIVE)

    # ---- axis (a): bounded message loss ------------------------------
    def lose_delivery(self, channel: str) -> bool:
        """Drop this delivery? (Budgeted per channel, coin per try.)"""
        budget = self.faults.max_losses
        if budget <= 0:
            return False
        used = self.message_losses.get(channel, 0)
        if used >= budget:
            return False
        if self.rng.uniform_int(f"fault:lose:{channel}", 0, 1) == 1:
            self.message_losses[channel] = used + 1
            return True
        return False

    # ---- axis (c): clock jitter --------------------------------------
    def jittered_us(self, name: str, interval_us: int) -> int:
        """One tick interval under the ``[p−ε, p+ε]`` envelope."""
        eps_us = ms_to_us(self.faults.jitter)
        if eps_us <= 0:
            return interval_us
        return self.rng.uniform_int(f"fault:jitter:{name}",
                                    interval_us - eps_us,
                                    interval_us + eps_us)

    # ---- axes (b)+(d): replication / preemption ----------------------
    def adjust_execution_us(self, exec_us: int, bcet_us: int,
                            wcet_us: int) -> int:
        """Stretch one invocation's completion time.

        Replication: the invocation completes at the quorum-th fastest
        replica vote; faulty rounds re-execute (shared budget).
        Preemption: 0..N interference bursts suspend the code.
        """
        if self.faults.replicas > 1:
            finishes = []
            for i in range(1, self.faults.replicas + 1):
                total = (exec_us if i == 1 else self.rng.uniform_int(
                    f"fault:exec:{i}", bcet_us, wcet_us))
                while (self.replica_faults < self.faults.max_losses
                       and self.rng.uniform_int(
                           f"fault:replica:{i}", 0, 1) == 1):
                    self.replica_faults += 1
                    total += self.rng.uniform_int(
                        f"fault:exec:{i}", bcet_us, wcet_us)
                finishes.append(total)
            finishes.sort()
            exec_us = finishes[self.faults.quorum() - 1]
        if self.invocation.kind is InvocationKind.PREEMPTIVE \
                and self.invocation.preemptions > 0:
            bursts = self.rng.uniform_int(
                "fault:preempt:count", 0, self.invocation.preemptions)
            for _ in range(bursts):
                self.preemption_bursts += 1
                exec_us += self.rng.uniform_int(
                    "fault:preempt:burst",
                    ms_to_us(self.invocation.preempt_min),
                    ms_to_us(self.invocation.preempt_max))
        return exec_us
