"""Zone-backend selection: one DBM API, pluggable kernels.

Two interchangeable backends implement the
:class:`~repro.zones.common.ZoneMatrix` contract:

``reference``
    The portable list-based :class:`~repro.zones.dbm.DBM` (aliases:
    ``python``, ``list``).  No dependencies, arbitrary-precision ints.
``numpy``
    The vectorized :class:`~repro.zones.dbm_numpy.NumpyDBM`, paired
    with a batched passed-list store.  Requires numpy.

Selection order for :func:`resolve_backend`:

1. an explicit name passed by the caller (e.g. the explorer's
   ``zone_backend=`` parameter or the CLI ``--zone-backend`` flag),
2. a process-wide override installed via :func:`set_backend`,
3. the ``REPRO_ZONE_BACKEND`` environment variable,
4. ``auto``: numpy when importable, the reference backend otherwise.

Both backends produce bit-identical matrices, hashes and emptiness
verdicts (enforced by the differential tests), so switching backends
never changes verification results — only wall time.
"""

from __future__ import annotations

import os
from typing import NamedTuple

from repro.zones.dbm import DBM
from repro.zones.store import ReferencePassedBucket

__all__ = [
    "ENV_VAR",
    "ZoneBackend",
    "available_backends",
    "resolve_backend",
    "set_backend",
]

ENV_VAR = "REPRO_ZONE_BACKEND"

_ALIASES = {
    "reference": "reference",
    "python": "reference",
    "list": "reference",
    "numpy": "numpy",
}


class ZoneBackend(NamedTuple):
    """A DBM implementation plus its matching passed-list store."""

    name: str
    dbm: type
    bucket: type


_REFERENCE = ZoneBackend("reference", DBM, ReferencePassedBucket)
_numpy_backend: ZoneBackend | None = None
_forced: str | None = None


def _load_numpy() -> ZoneBackend:
    global _numpy_backend
    if _numpy_backend is None:
        from repro.zones.dbm_numpy import NumpyDBM
        from repro.zones.store import NumpyPassedBucket
        _numpy_backend = ZoneBackend("numpy", NumpyDBM, NumpyPassedBucket)
    return _numpy_backend


def available_backends() -> tuple[str, ...]:
    """Canonical names of the backends importable right now."""
    names = ["reference"]
    try:
        _load_numpy()
    except ImportError:
        pass
    else:
        names.append("numpy")
    return tuple(names)


def set_backend(name: str | None) -> None:
    """Install a process-wide backend override (``None`` clears it).

    Accepts ``auto``, ``reference`` (aliases ``python``/``list``) or
    ``numpy``; validation of availability happens at resolve time so
    an early CLI call cannot crash on a missing optional dependency.
    """
    global _forced
    if name is not None and name != "auto" and name not in _ALIASES:
        raise ValueError(
            f"unknown zone backend {name!r} "
            f"(choose from: auto, {', '.join(sorted(set(_ALIASES)))})")
    _forced = name


def resolve_backend(name: str | None = None) -> ZoneBackend:
    """Resolve a backend spec (see the module docstring for the order)."""
    if name is None:
        name = _forced or os.environ.get(ENV_VAR, "").strip() or "auto"
    if name == "auto":
        try:
            return _load_numpy()
        except ImportError:
            return _REFERENCE
    key = _ALIASES.get(name)
    if key is None:
        raise ValueError(
            f"unknown zone backend {name!r} "
            f"(choose from: auto, {', '.join(sorted(set(_ALIASES)))})")
    if key == "numpy":
        try:
            return _load_numpy()
        except ImportError as exc:
            raise RuntimeError(
                "the numpy zone backend was requested but numpy is "
                "not importable") from exc
    return _REFERENCE
