"""Zone-backend selection: one DBM API, pluggable kernels.

Three interchangeable backends implement the
:class:`~repro.zones.common.ZoneMatrix` contract:

``reference``
    The portable list-based :class:`~repro.zones.dbm.DBM` (aliases:
    ``python``, ``list``).  No dependencies, arbitrary-precision ints.
``numpy``
    The vectorized :class:`~repro.zones.dbm_numpy.NumpyDBM`, paired
    with a batched passed-list store.  Requires numpy.
``native``
    The compiled :class:`~repro.zones.dbm_native.NativeDBM` (alias:
    ``c``): C kernels over the numpy storage, sharing the numpy
    backend's batched store.  Requires numpy plus the optional
    ``repro.zones._dbmkernel`` extension (``python setup.py build_ext
    --inplace``, or the ``[native]`` install extra); simply absent
    from :func:`available_backends` when unbuilt.

Selection order for :func:`resolve_backend`:

1. an explicit name passed by the caller (e.g. the explorer's
   ``zone_backend=`` parameter or the CLI ``--zone-backend`` flag),
2. a process-wide override installed via :func:`set_backend`,
3. the ``REPRO_ZONE_BACKEND`` environment variable,
4. ``auto``: the cheapest available backend for the workload at hand.

``auto`` is hint-aware: callers that know the compiled network (the
explorers) pass a :class:`~repro.zones.costmodel.BackendHint` with the
clock count, structural model size and expected wave width, and the
committed microbenchmark cost table in :mod:`repro.zones.costmodel`
picks the backend.  Without a hint the preference is static
(native > numpy > reference).

All backends produce bit-identical matrices, hashes and emptiness
verdicts (enforced by the differential tests), so switching backends
never changes verification results — only wall time.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.zones.dbm import DBM
from repro.zones.store import ReferencePassedBucket

__all__ = [
    "ENV_VAR",
    "ZoneBackend",
    "available_backends",
    "requested_backend",
    "resolve_backend",
    "set_backend",
]

ENV_VAR = "REPRO_ZONE_BACKEND"

_ALIASES = {
    "reference": "reference",
    "python": "reference",
    "list": "reference",
    "numpy": "numpy",
    "native": "native",
    "c": "native",
}


class ZoneBackend(NamedTuple):
    """A DBM implementation plus its matching passed-list store."""

    name: str
    dbm: type
    bucket: type


def _env_backend() -> str:
    """``REPRO_ZONE_BACKEND``, validated at read time (fail fast —
    a daemon must reject a typo at boot, not inside a request)."""
    from repro.envvars import env_choice

    return env_choice(ENV_VAR, ("auto", *_ALIASES),
                      default="auto")


_REFERENCE = ZoneBackend("reference", DBM, ReferencePassedBucket)
_numpy_backend: ZoneBackend | None = None
_native_backend: ZoneBackend | None = None
_forced: str | None = None


def _load_numpy() -> ZoneBackend:
    global _numpy_backend
    if _numpy_backend is None:
        from repro.zones.dbm_numpy import NumpyDBM
        from repro.zones.store import NumpyPassedBucket
        _numpy_backend = ZoneBackend("numpy", NumpyDBM, NumpyPassedBucket)
    return _numpy_backend


def _load_native() -> ZoneBackend:
    global _native_backend
    if _native_backend is None:
        from repro.zones.dbm_native import NativeDBM
        from repro.zones.store import NumpyPassedBucket
        _native_backend = ZoneBackend("native", NativeDBM,
                                      NumpyPassedBucket)
    return _native_backend


def available_backends() -> tuple[str, ...]:
    """Canonical names of the backends importable right now."""
    names = ["reference"]
    try:
        _load_numpy()
    except ImportError:
        pass
    else:
        names.append("numpy")
    try:
        _load_native()
    except ImportError:
        pass
    else:
        names.append("native")
    return tuple(names)


def set_backend(name: str | None) -> None:
    """Install a process-wide backend override (``None`` clears it).

    Accepts ``auto``, ``reference`` (aliases ``python``/``list``),
    ``numpy`` or ``native`` (alias ``c``); validation of availability
    happens at resolve time so an early CLI call cannot crash on a
    missing optional dependency.
    """
    global _forced
    if name is not None and name != "auto" and name not in _ALIASES:
        raise ValueError(
            f"unknown zone backend {name!r} "
            f"(choose from: auto, {', '.join(sorted(set(_ALIASES)))})")
    _forced = name


def requested_backend(name: str | None = None) -> str:
    """The *effective spec* before availability resolution.

    Returns ``"auto"`` or a canonical backend name, following the same
    explicit > override > environment > default order as
    :func:`resolve_backend`.  Lets :class:`EngineConfig`-style replay
    snapshots preserve an ``auto`` request literally, so worker
    processes re-resolve per model instead of inheriting one frozen
    choice (bit-identity across backends makes that safe).
    """
    if name is None:
        name = _forced or _env_backend()
    if name == "auto":
        return "auto"
    key = _ALIASES.get(name)
    if key is None:
        raise ValueError(
            f"unknown zone backend {name!r} "
            f"(choose from: auto, {', '.join(sorted(set(_ALIASES)))})")
    return key


def _resolve_auto(hint=None) -> ZoneBackend:
    """Cost-model resolution of ``auto`` (see module docstring)."""
    from repro.zones.costmodel import choose_backend
    candidates = available_backends()
    name = choose_backend(candidates, hint)
    if name == "native":
        return _load_native()
    if name == "numpy":
        return _load_numpy()
    return _REFERENCE


def resolve_backend(name: str | None = None, *,
                    hint=None) -> ZoneBackend:
    """Resolve a backend spec (see the module docstring for the order).

    ``hint`` is an optional :class:`~repro.zones.costmodel.BackendHint`
    consulted only when the spec resolves to ``auto``; explicit names
    ignore it.
    """
    if name is None:
        name = _forced or _env_backend()
    if name == "auto":
        return _resolve_auto(hint)
    key = _ALIASES.get(name)
    if key is None:
        raise ValueError(
            f"unknown zone backend {name!r} "
            f"(choose from: auto, {', '.join(sorted(set(_ALIASES)))})")
    if key == "numpy":
        try:
            return _load_numpy()
        except ImportError as exc:
            raise RuntimeError(
                "the numpy zone backend was requested but numpy is "
                "not importable") from exc
    if key == "native":
        try:
            return _load_native()
        except ImportError as exc:
            raise RuntimeError(
                "the native zone backend was requested but the "
                "compiled kernel is not importable — build it with "
                "'python setup.py build_ext --inplace' (or install "
                "the [native] extra), or pick auto/numpy/reference"
            ) from exc
    return _REFERENCE
