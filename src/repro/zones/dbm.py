"""Difference Bound Matrices — the symbolic zone representation.

A *zone* is a conjunction of clock constraints ``x - y ≺ n``; it is the
canonical symbolic representation for timed-automata model checking.
A DBM over ``n`` clocks (clock 0 is the constant-zero reference clock)
is an ``n × n`` matrix ``D`` where entry ``D[i][j]`` encodes the bound
of ``x_i - x_j`` (see :mod:`repro.zones.bounds` for the encoding).

The operations implemented here are the standard toolkit of
zone-based reachability (Bengtsson & Yi 2003):

``close``              Floyd–Warshall canonicalization
``close_clock``        incremental O(n²) re-closure after tightening
``constrain``          intersection with one constraint
``up``                 delay (future) operator
``reset`` / ``assign`` clock reset ``x := c`` and copy ``x := y``
``includes``           zone inclusion (on canonical forms)
``extrapolate_max``    Extra_M abstraction for termination
``contains_point``     membership of a concrete valuation (testing aid)

Instances are small (the framework's PSMs use well under 16 clocks),
so the matrix is a flat Python list; no numpy dependency is needed and
arbitrary-precision integers make overflow a non-issue.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.zones.bounds import (
    INF,
    LE_ZERO,
    bound_add,
    bound_as_text,
    bound_value,
    decode,
    encode,
)

__all__ = ["DBM"]


class DBM:
    """A difference bound matrix over ``size`` clocks (clock 0 = reference).

    The matrix is kept *canonical* (all-pairs-tightened) by every public
    mutating operation, so equality, hashing and inclusion tests are
    meaningful at all times.  An *empty* zone is represented by a
    negative diagonal entry; :meth:`is_empty` checks for it.
    """

    __slots__ = ("size", "_m")

    def __init__(self, size: int, _m: list[int] | None = None):
        if size < 1:
            raise ValueError("a DBM needs at least the reference clock")
        self.size = size
        if _m is None:
            # Universal zone: no upper bounds, clocks non-negative.
            _m = [INF] * (size * size)
            for i in range(size):
                _m[i * size + i] = LE_ZERO
                _m[0 * size + i] = LE_ZERO  # x0 - xi <= 0  (xi >= 0)
            _m[0] = LE_ZERO
        self._m = _m

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universal(cls, size: int) -> "DBM":
        """All clock valuations with non-negative clocks."""
        return cls(size)

    @classmethod
    def zero(cls, size: int) -> "DBM":
        """The singleton zone where every clock equals 0."""
        zone = cls(size)
        m = zone._m
        n = size
        for i in range(n):
            for j in range(n):
                m[i * n + j] = LE_ZERO
        return zone

    def copy(self) -> "DBM":
        return DBM(self.size, list(self._m))

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        """Encoded bound of ``x_i - x_j``."""
        return self._m[i * self.size + j]

    def set_raw(self, i: int, j: int, bound: int) -> None:
        """Set an entry without re-closing.

        Callers must re-establish canonical form via :meth:`close` or
        :meth:`close_clock` before using comparison operations.
        """
        self._m[i * self.size + j] = bound

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def close(self) -> "DBM":
        """Floyd–Warshall all-pairs tightening.  Returns self."""
        n = self.size
        m = self._m
        for k in range(n):
            row_k = k * n
            for i in range(n):
                d_ik = m[i * n + k]
                if d_ik == INF:
                    continue
                row_i = i * n
                for j in range(n):
                    d_kj = m[row_k + j]
                    if d_kj == INF:
                        continue
                    via = bound_add(d_ik, d_kj)
                    if via < m[row_i + j]:
                        m[row_i + j] = via
        return self

    def close_clock(self, x: int) -> "DBM":
        """Re-close after only row/column ``x`` was tightened (O(n²))."""
        n = self.size
        m = self._m
        for i in range(n):
            d_ix = m[i * n + x]
            row_i = i * n
            row_x = x * n
            if d_ix != INF:
                for j in range(n):
                    d_xj = m[row_x + j]
                    if d_xj == INF:
                        continue
                    via = bound_add(d_ix, d_xj)
                    if via < m[row_i + j]:
                        m[row_i + j] = via
        return self

    def is_empty(self) -> bool:
        """True when the zone contains no valuation."""
        n = self.size
        m = self._m
        return any(m[i * n + i] < LE_ZERO for i in range(n))

    # ------------------------------------------------------------------
    # Zone operations
    # ------------------------------------------------------------------
    def constrain(self, i: int, j: int, bound: int) -> "DBM":
        """Intersect with ``x_i - x_j ≺ bound``.  Returns self.

        Keeps canonical form; emptiness shows on the diagonal.
        """
        n = self.size
        m = self._m
        # Unsatisfiable together with the existing opposite bound?
        if bound_add(m[j * n + i], bound) < LE_ZERO:
            m[i * n + i] = bound_add(m[j * n + i], bound)
            return self
        if bound < m[i * n + j]:
            m[i * n + j] = bound
            # Re-close only via the two touched clocks.
            for a in range(n):
                row_a = a * n
                d_ai = m[row_a + i]
                if d_ai == INF:
                    continue
                for b in range(n):
                    d_jb = m[j * n + b]
                    if d_jb == INF:
                        continue
                    via = bound_add(bound_add(d_ai, bound), d_jb)
                    if via < m[row_a + b]:
                        m[row_a + b] = via
        return self

    def up(self) -> "DBM":
        """Delay operator: remove all upper bounds (future closure)."""
        n = self.size
        m = self._m
        for i in range(1, n):
            m[i * n + 0] = INF
        return self

    def reset(self, x: int, value: int = 0) -> "DBM":
        """Assignment ``x := value`` (non-negative integer)."""
        n = self.size
        m = self._m
        pos = encode(value, True)
        neg = encode(-value, True)
        for j in range(n):
            m[x * n + j] = bound_add(pos, m[0 * n + j])
            m[j * n + x] = bound_add(m[j * n + 0], neg)
        m[x * n + x] = LE_ZERO
        return self

    def assign_clock(self, x: int, y: int) -> "DBM":
        """Clock copy ``x := y``."""
        if x == y:
            return self
        n = self.size
        m = self._m
        for j in range(n):
            if j != x:
                m[x * n + j] = m[y * n + j]
                m[j * n + x] = m[j * n + y]
        m[x * n + x] = LE_ZERO
        return self

    def free(self, x: int) -> "DBM":
        """Remove all constraints on clock ``x`` (unbounded value)."""
        n = self.size
        m = self._m
        for j in range(n):
            if j != x:
                m[x * n + j] = INF
                m[j * n + x] = m[j * n + 0]
        return self

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def includes(self, other: "DBM") -> bool:
        """Zone inclusion ``other ⊆ self`` (both canonical)."""
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        mine = self._m
        theirs = other._m
        return all(mine[k] >= theirs[k] for k in range(len(mine)))

    def intersects(self, other: "DBM") -> bool:
        """True when the two zones share at least one valuation."""
        merged = self.copy()
        n = self.size
        for i in range(n):
            for j in range(n):
                b = other.get(i, j)
                if b < merged.get(i, j):
                    merged.set_raw(i, j, b)
        merged.close()
        return not merged.is_empty()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DBM)
            and self.size == other.size
            and self._m == other._m
        )

    def __hash__(self) -> int:
        return hash((self.size, tuple(self._m)))

    # ------------------------------------------------------------------
    # Abstraction
    # ------------------------------------------------------------------
    def extrapolate_max(self, max_consts: Sequence[int]) -> "DBM":
        """Extra_M abstraction on per-clock maximum constants.

        ``max_consts[i]`` is the largest constant clock ``i`` is ever
        compared against (use 0 for never-compared clocks; the
        reference clock entry must be 0).  Bounds beyond the constants
        are widened, guaranteeing a finite zone graph.  The matrix is
        re-closed afterwards because widening may break canonicity.
        """
        n = self.size
        if len(max_consts) != n:
            raise ValueError("need one max constant per clock")
        m = self._m
        changed = False
        for i in range(n):
            m_i = max_consts[i]
            row = i * n
            for j in range(n):
                if i == j:
                    continue
                b = m[row + j]
                if b == INF:
                    continue
                value = bound_value(b)
                if value > m_i:
                    m[row + j] = INF
                    changed = True
                elif value < -max_consts[j]:
                    m[row + j] = encode(-max_consts[j], False)
                    changed = True
        if changed:
            self.close()
        return self

    # ------------------------------------------------------------------
    # Concrete queries
    # ------------------------------------------------------------------
    def upper_bound(self, x: int) -> int:
        """Encoded upper bound of clock ``x`` (``D[x][0]``)."""
        return self._m[x * self.size + 0]

    def lower_bound(self, x: int) -> int:
        """Largest lower bound of ``x`` as a non-negative value.

        Decodes ``D[0][x]`` (which encodes ``-lower``); returns the
        value only — strictness is available via :meth:`get`.
        """
        return -bound_value(self._m[0 * self.size + x])

    def contains_point(self, values: Sequence[int]) -> bool:
        """Membership test for a concrete valuation.

        ``values[i]`` is the value of clock ``i`` for ``i ≥ 1``;
        ``values[0]`` must be 0 (the reference clock).
        """
        if len(values) != self.size:
            raise ValueError("valuation length must equal DBM size")
        n = self.size
        for i in range(n):
            for j in range(n):
                b = self._m[i * n + j]
                if b == INF:
                    continue
                bound, weak = decode(b)
                diff = values[i] - values[j]
                if diff > bound or (diff == bound and not weak):
                    return False
        return True

    def sample_point(self, limit: int = 1 << 20) -> list[int] | None:
        """A concrete integer valuation inside the zone, if one exists.

        Uses the canonical form: picking each clock at its lower bound
        (rounded up past strict bounds) and re-tightening is sufficient
        for the integer zones produced by integer-constant automata.
        Returns ``None`` for empty zones.
        """
        if self.is_empty():
            return None
        work = self.copy()
        values = [0] * self.size
        for x in range(1, self.size):
            low = work.get(0, x)
            value, weak = decode(low)
            candidate = -value if weak else -value + 1
            candidate = max(candidate, 0)
            if candidate > limit:
                return None
            work.constrain(x, 0, encode(candidate, True))
            work.constrain(0, x, encode(-candidate, True))
            if work.is_empty():
                return None
            values[x] = candidate
        return values

    # ------------------------------------------------------------------
    # Debug rendering
    # ------------------------------------------------------------------
    def as_text(self, clock_names: Sequence[str] | None = None) -> str:
        """Readable constraint list, e.g. ``x<=5 ∧ x-y<2``."""
        names = list(clock_names) if clock_names else [
            "0" if i == 0 else f"x{i}" for i in range(self.size)
        ]
        parts: list[str] = []
        n = self.size
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                b = self._m[i * n + j]
                if b == INF:
                    continue
                if i == 0:
                    value, weak = decode(b)
                    if value == 0 and weak:
                        continue  # trivial xj >= 0
                    parts.append(f"{names[j]}>{'=' if weak else ''}{-value}")
                elif j == 0:
                    parts.append(f"{names[i]}{bound_as_text(b)}")
                else:
                    parts.append(f"{names[i]}-{names[j]}{bound_as_text(b)}")
        return " ∧ ".join(parts) if parts else "true"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DBM({self.as_text()})"

    def frozen(self) -> tuple[int, ...]:
        """Immutable snapshot usable as a dict key."""
        return tuple(self._m)

    @classmethod
    def from_frozen(cls, size: int, snapshot: Iterable[int]) -> "DBM":
        return cls(size, list(snapshot))
