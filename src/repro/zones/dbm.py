"""Difference Bound Matrices — the portable reference zone backend.

A *zone* is a conjunction of clock constraints ``x - y ≺ n``; it is the
canonical symbolic representation for timed-automata model checking.
A DBM over ``n`` clocks (clock 0 is the constant-zero reference clock)
is an ``n × n`` matrix ``D`` where entry ``D[i][j]`` encodes the bound
of ``x_i - x_j`` (see :mod:`repro.zones.bounds` for the encoding).

The operations implemented here are the standard toolkit of
zone-based reachability (Bengtsson & Yi 2003):

``close``              Floyd–Warshall canonicalization
``close_clock``        incremental O(n²) re-closure after tightening
``constrain``          intersection with one constraint
``constrain_all``      fused constraint sequence with early exit
``up``                 delay (future) operator
``reset`` / ``assign`` clock reset ``x := c`` and copy ``x := y``
``includes``           zone inclusion (on canonical forms)
``extrapolate_max``    Extra_M abstraction for termination
``contains_point``     membership of a concrete valuation (testing aid)

Instances are small (the framework's PSMs use well under 16 clocks),
so the matrix is a flat Python list; no numpy dependency is needed and
arbitrary-precision integers make overflow a non-issue.  A vectorized
drop-in replacement lives in :mod:`repro.zones.dbm_numpy`; backends are
selected via :mod:`repro.zones.backend`.

Allocation discipline (this is the model checker's innermost data
structure): emptiness is tracked as a flag maintained at tightening
time (``None`` = unknown, recomputed lazily after raw edits),
``frozen()`` snapshots are cached on canonical zones and invalidated by
mutation, and ``copy_from`` overwrites a scratch zone in place so
successor computation does not churn intermediate matrices.
"""

from __future__ import annotations

from typing import Sequence

from repro.zones.bounds import (
    INF,
    LE_ZERO,
    bound_add,
    bound_value,
    encode,
)
from repro.zones.common import ZoneMatrix

__all__ = ["DBM"]


class DBM(ZoneMatrix):
    """A difference bound matrix over ``size`` clocks (clock 0 = reference).

    The matrix is kept *canonical* (all-pairs-tightened) by every public
    mutating operation, so equality, hashing and inclusion tests are
    meaningful at all times.  An *empty* zone is represented by a
    negative diagonal entry; :meth:`is_empty` reports the cached
    emptiness flag (set when a tightening discovers the contradiction,
    recomputed lazily after :meth:`set_raw`/:meth:`close`).  The flag is
    sticky: updating an already-empty zone keeps it empty even when the
    update happens to overwrite the negative diagonal witness.
    """

    __slots__ = ("size", "_m", "_empty", "_frozen")

    def __init__(self, size: int, _m: list[int] | None = None):
        if size < 1:
            raise ValueError("a DBM needs at least the reference clock")
        self.size = size
        if _m is None:
            # Universal zone: no upper bounds, clocks non-negative.
            _m = [INF] * (size * size)
            for i in range(size):
                _m[i * size + i] = LE_ZERO
                _m[0 * size + i] = LE_ZERO  # x0 - xi <= 0  (xi >= 0)
            _m[0] = LE_ZERO
            self._empty = False
        else:
            self._empty = None  # unknown — computed lazily
        self._m = _m
        self._frozen = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universal(cls, size: int) -> "DBM":
        """All clock valuations with non-negative clocks."""
        return cls(size)

    @classmethod
    def zero(cls, size: int) -> "DBM":
        """The singleton zone where every clock equals 0."""
        zone = cls(size)
        m = zone._m
        for k in range(size * size):
            m[k] = LE_ZERO
        return zone

    def copy(self) -> "DBM":
        clone = DBM.__new__(DBM)
        clone.size = self.size
        clone._m = self._m.copy()
        clone._empty = self._empty
        clone._frozen = self._frozen
        return clone

    def copy_from(self, other: "DBM") -> "DBM":
        """Overwrite this zone in place from a same-size zone.

        The allocation-free counterpart of :meth:`copy`, used to reuse
        one scratch matrix across an explorer's successor computations.
        """
        self._m[:] = other._m
        self._empty = other._empty
        self._frozen = other._frozen
        return self

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        """Encoded bound of ``x_i - x_j``."""
        return self._m[i * self.size + j]

    def set_raw(self, i: int, j: int, bound: int) -> None:
        """Set an entry without re-closing.

        Callers must re-establish canonical form via :meth:`close` or
        :meth:`close_clock` before using comparison operations.
        """
        self._m[i * self.size + j] = bound
        self._empty = None
        self._frozen = None

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def close(self) -> "DBM":
        """Floyd–Warshall all-pairs tightening.  Returns self."""
        n = self.size
        m = self._m
        self._frozen = None
        for k in range(n):
            row_k = k * n
            for i in range(n):
                d_ik = m[i * n + k]
                if d_ik == INF:
                    continue
                row_i = i * n
                for j in range(n):
                    d_kj = m[row_k + j]
                    if d_kj == INF:
                        continue
                    via = bound_add(d_ik, d_kj)
                    if via < m[row_i + j]:
                        m[row_i + j] = via
        self._empty = None
        return self

    def close_clock(self, x: int) -> "DBM":
        """Re-close after only row/column ``x`` was tightened (O(n²))."""
        n = self.size
        m = self._m
        self._frozen = None
        for i in range(n):
            d_ix = m[i * n + x]
            row_i = i * n
            row_x = x * n
            if d_ix != INF:
                for j in range(n):
                    d_xj = m[row_x + j]
                    if d_xj == INF:
                        continue
                    via = bound_add(d_ix, d_xj)
                    if via < m[row_i + j]:
                        m[row_i + j] = via
        self._empty = None
        return self

    def is_empty(self) -> bool:
        """True when the zone contains no valuation."""
        empty = self._empty
        if empty is None:
            n = self.size
            m = self._m
            empty = self._empty = any(
                m[i * n + i] < LE_ZERO for i in range(n))
        return empty

    # ------------------------------------------------------------------
    # Zone operations
    # ------------------------------------------------------------------
    def constrain(self, i: int, j: int, bound: int) -> "DBM":
        """Intersect with ``x_i - x_j ≺ bound``.  Returns self.

        Keeps canonical form; emptiness shows on the diagonal and is
        recorded in the cached flag the moment the contradiction is
        discovered.
        """
        n = self.size
        m = self._m
        self._frozen = None
        # Unsatisfiable together with the existing opposite bound?
        cross = bound_add(m[j * n + i], bound)
        if cross < LE_ZERO:
            m[i * n + i] = cross
            self._empty = True
            return self
        if bound < m[i * n + j]:
            m[i * n + j] = bound
            # Re-close only via the two touched clocks.
            for a in range(n):
                row_a = a * n
                d_ai = m[row_a + i]
                if d_ai == INF:
                    continue
                for b in range(n):
                    d_jb = m[j * n + b]
                    if d_jb == INF:
                        continue
                    via = bound_add(bound_add(d_ai, bound), d_jb)
                    if via < m[row_a + b]:
                        m[row_a + b] = via
        return self

    def up(self) -> "DBM":
        """Delay operator: remove all upper bounds (future closure)."""
        n = self.size
        m = self._m
        self._frozen = None
        for i in range(1, n):
            m[i * n + 0] = INF
        return self

    def reset(self, x: int, value: int = 0) -> "DBM":
        """Assignment ``x := value`` (non-negative integer)."""
        n = self.size
        m = self._m
        self._frozen = None
        pos = encode(value, True)
        neg = encode(-value, True)
        for j in range(n):
            m[x * n + j] = bound_add(pos, m[0 * n + j])
            m[j * n + x] = bound_add(m[j * n + 0], neg)
        m[x * n + x] = LE_ZERO
        return self

    def assign_clock(self, x: int, y: int) -> "DBM":
        """Clock copy ``x := y``."""
        if x == y:
            return self
        n = self.size
        m = self._m
        self._frozen = None
        for j in range(n):
            if j != x:
                m[x * n + j] = m[y * n + j]
                m[j * n + x] = m[j * n + y]
        m[x * n + x] = LE_ZERO
        return self

    def free(self, x: int) -> "DBM":
        """Remove all constraints on clock ``x`` (unbounded value)."""
        n = self.size
        m = self._m
        self._frozen = None
        for j in range(n):
            if j != x:
                m[x * n + j] = INF
                m[j * n + x] = m[j * n + 0]
        return self

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def includes(self, other: "ZoneMatrix") -> bool:
        """Zone inclusion ``other ⊆ self`` (both canonical)."""
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        theirs = other._m if type(other) is DBM else other.frozen()
        for a, b in zip(self._m, theirs):
            if a < b:
                return False
        return True

    def intersects(self, other: "ZoneMatrix") -> bool:
        """True when the two zones share at least one valuation.

        Works directly on the raw bound lists: the intersection of two
        DBMs is the elementwise minimum, re-closed to surface emptiness
        on the diagonal.
        """
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        theirs = other._m if type(other) is DBM else other.frozen()
        merged = DBM(self.size, list(map(min, self._m, theirs)))
        return not merged.close().is_empty()

    # ------------------------------------------------------------------
    # Abstraction
    # ------------------------------------------------------------------
    def extrapolate_max(self, max_consts: Sequence[int]) -> "DBM":
        """Extra_M abstraction on per-clock maximum constants.

        ``max_consts[i]`` is the largest constant clock ``i`` is ever
        compared against (use 0 for never-compared clocks; the
        reference clock entry must be 0).  Bounds beyond the constants
        are widened, guaranteeing a finite zone graph.  The matrix is
        re-closed afterwards because widening may break canonicity.
        """
        n = self.size
        if len(max_consts) != n:
            raise ValueError("need one max constant per clock")
        m = self._m
        changed = False
        for i in range(n):
            m_i = max_consts[i]
            row = i * n
            for j in range(n):
                if i == j:
                    continue
                b = m[row + j]
                if b == INF:
                    continue
                value = bound_value(b)
                if value > m_i:
                    m[row + j] = INF
                    changed = True
                elif value < -max_consts[j]:
                    m[row + j] = encode(-max_consts[j], False)
                    changed = True
        if changed:
            was_empty = self._empty
            self._frozen = None
            self.close()
            # Widening cannot change emptiness: keep the known verdict
            # instead of forcing a diagonal rescan.
            if was_empty is not None:
                self._empty = was_empty
        return self

    def extrapolate_lu(self, lower: Sequence[int],
                       upper: Sequence[int]) -> "DBM":
        """Extra⁺_LU abstraction on per-clock lower/upper bounds.

        The coarser sibling of :meth:`extrapolate_max` (Behrmann,
        Bouyer, Larsen & Pelánek): ``lower[i]``/``upper[i]`` are the
        largest constants clock ``i`` is still compared against from
        the current locations by lower-bound (``x > c``) respectively
        upper-bound (``x < c``) constraints, with
        :data:`~repro.ta.bounds.NO_BOUND` (−1) meaning "never".  The
        reference-clock entries must be 0.  Widening rules (value
        comparisons on the *pre-pass* matrix, UPPAAL's
        ``dbm_extrapolateLUBounds``):

        * ``D[i][j]`` → ∞ when its value exceeds ``lower[i]``,
        * row ``i`` → ∞ when ``x_i``'s lower bound exceeds ``lower[i]``,
        * ``D[i][j]`` (``i ≠ 0``) → ∞ when ``x_j``'s lower bound
          exceeds ``upper[j]``,
        * ``D[0][j]`` → ``(-upper[j], <)`` in that same case.

        Every rule only loosens entries the Extra_M rules would also
        loosen (for any ``lower``/``upper`` pointwise ≤ the max-constant
        map), so the output zone always includes the Extra_M output.
        Re-closed afterwards, with the same sticky-emptiness handling
        as :meth:`extrapolate_max`.
        """
        n = self.size
        if len(lower) != n or len(upper) != n:
            raise ValueError("need one lower and upper bound per clock")
        m = self._m
        row0 = m[0:n]  # snapshot: the rules read the pre-pass bounds
        changed = False
        for i in range(1, n):
            l_i = lower[i]
            row = i * n
            # Lower bound of x_i beyond L(x_i): the whole row widens.
            row_dead = row0[i] != INF and -(row0[i] >> 1) > l_i
            for j in range(n):
                if i == j:
                    continue
                b = m[row + j]
                if b == INF:
                    continue
                if row_dead or (b >> 1) > l_i \
                        or (row0[j] != INF
                            and -(row0[j] >> 1) > upper[j]):
                    m[row + j] = INF
                    changed = True
        for j in range(1, n):
            b = row0[j]
            if b != INF and -(b >> 1) > upper[j]:
                m[j] = (-upper[j]) << 1  # encode(-upper[j], strict)
                changed = True
        if changed:
            was_empty = self._empty
            self._frozen = None
            self.close()
            # Widening cannot change emptiness (same as Extra_M).
            if was_empty is not None:
                self._empty = was_empty
        return self

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def frozen(self) -> tuple[int, ...]:
        """Immutable snapshot usable as a dict key (cached)."""
        snapshot = self._frozen
        if snapshot is None:
            snapshot = self._frozen = tuple(self._m)
        return snapshot
