"""Batched successor pipeline: one plan applied to a stack of zones.

The sharded explorer groups every wave of the breadth-first frontier
by discrete-configuration key.  All states in a group share the same
memoized successor plans, so instead of running the scalar pipeline
(copy → guard constraints → resets → frees → invariants → delay →
Extra_M) once per state, the group's zones are stacked into one
``(B, n, n)`` int64 array and each plan is applied to the whole batch
with broadcast kernels.  On the paper's case-study PSM the average
group holds ~5 zones, so the per-call numpy dispatch overhead — the
dominant cost of the scalar numpy backend on small matrices — is paid
once per *group* instead of once per *state*.

Bit-identity contract: for every batch element that survives all
emptiness checks, the resulting matrix equals the scalar
:class:`~repro.zones.dbm_numpy.NumpyDBM` pipeline bit for bit (the
kernels mirror the scalar ones op by op, including the incremental
re-closure in ``constrain`` and the changed-only closure after
Extra_M).  Elements that go empty are only *flagged* — their matrices
keep receiving the remaining ops and may hold garbage, exactly like a
discarded scalar scratch would; the flag is sticky so they can never
resurface.  Encoded-bound arithmetic masks ``INF`` before every value
shift, so the packed encoding cannot overflow int64.
"""

from __future__ import annotations

import numpy as np

from repro.zones.bounds import INF, LE_ZERO, encode

__all__ = ["BatchExpander"]


def _vec_add_scalar(vec: np.ndarray, bound: int) -> np.ndarray:
    """Vectorized ``bound_add(vec, bound)`` for a finite scalar bound.

    Uses the additive identity of the packed encoding
    (``e = 2·value | weak``): for finite operands

        a ⊕ b = a − (a & 1) + b − (b & 1) + ((a & 1) & (b & 1)),

    which for a *weak* scalar bound collapses to ``vec + bound − 1``
    and for a strict one to ``vec − (vec & 1) + bound`` — one to three
    kernels instead of the mask-shift-or cascade.  ``INF`` entries are
    restored afterwards (the intermediate modular wraparound on
    ``INF``-tainted lanes is discarded by the ``where``).
    """
    if bound & 1:
        out = vec + (bound - 1)
    else:
        out = vec - (vec & 1) + bound
    return np.where(vec != INF, out, INF)


def _outer_add(col: np.ndarray, row: np.ndarray) -> np.ndarray:
    """Batched ``bound_add`` outer sum ``out[b, p, q] = col[b, p] ⊕ row[b, q]``.

    Same additive-identity trick as :func:`_vec_add_scalar`; lanes
    with an ``INF`` operand may wrap modularly mid-computation and are
    overwritten with ``INF`` at the end.
    """
    weak_col = col & 1
    weak_row = row & 1
    out = (col - weak_col)[:, :, None] + (row - weak_row)[:, None, :]
    out += weak_col[:, :, None] & weak_row[:, None, :]
    mask = (col != INF)[:, :, None] & (row != INF)[:, None, :]
    return np.where(mask, out, INF)


def _vec_add_each(vec: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Vectorized ``bound_add`` with one *finite* bound per lane.

    The general additive identity of the packed encoding (see
    :func:`_vec_add_scalar`), with the bound varying across the batch.
    ``bounds`` broadcasts against ``vec`` — pass ``bounds[:, None]`` to
    add per-batch bounds to row vectors.  ``INF`` lanes of ``vec`` are
    restored afterwards; ``bounds`` entries must be finite (the
    monitor's event pins always are).
    """
    weak_v = vec & 1
    weak_b = bounds & 1
    out = vec - weak_v + (bounds - weak_b) + (weak_v & weak_b)
    return np.where(vec != INF, out, INF)


_off_diagonal_cache: dict[int, np.ndarray] = {}


def _off_diagonal(n: int) -> np.ndarray:
    mask = _off_diagonal_cache.get(n)
    if mask is None:
        mask = ~np.eye(n, dtype=bool)
        mask.setflags(write=False)
        _off_diagonal_cache[n] = mask
    return mask


class BatchExpander:
    """Apply one :class:`_MovePlan` op sequence to a zone stack.

    Instances are cheap and hold no state between :meth:`run_plan`
    calls, so every worker thread can own one without sharing the
    scalar backend's per-size workspace cache.
    """

    __slots__ = ("n", "max_consts", "_ceilings", "_strict_floor",
                 "_lu_arrays")

    def __init__(self, n_clocks: int, max_consts):
        self.n = n_clocks
        self.max_consts = max_consts
        self._ceilings = np.array(max_consts, dtype=np.int64)
        self._strict_floor = (-self._ceilings) << 1  # encode(-c, False)
        # Per-plan Extra⁺_LU vectors, memoized by the (lower, upper)
        # tuples the compiled network hands out per location vector.
        self._lu_arrays: dict[tuple, tuple] = {}

    # -- individual kernels -------------------------------------------
    def constrain(self, m: np.ndarray, alive: np.ndarray,
                  i: int, j: int, bound: int) -> None:
        """Intersect each live element with ``x_i - x_j ≺ bound``."""
        col_ji = m[:, j, i]
        # Emptiness test ``(col ⊕ bound) < LE_ZERO`` without masking:
        # an INF operand keeps the sum hugely positive, so it can never
        # flag empty — exactly the scalar semantics.
        if bound & 1:
            cross = col_ji + (bound - 1)
        else:
            cross = col_ji - (col_ji & 1) + bound
        np.logical_and(alive, cross >= LE_ZERO, out=alive)
        tighten = alive & (bound < m[:, i, j])
        if not tighten.any():
            return
        m[tighten, i, j] = bound
        # Incremental re-closure through the fresh (i, j) edge, exactly
        # as the scalar kernel: min(m, (col_i ⊕ bound) ⊕ row_j).
        col_b = _vec_add_scalar(m[:, :, i], bound)
        via = _outer_add(col_b, m[:, j, :])
        np.minimum(m, via, out=m, where=tighten[:, None, None])

    def constrain_each(self, m: np.ndarray, alive: np.ndarray,
                       i: int, j: int, bounds: np.ndarray) -> None:
        """Intersect element ``b`` with ``x_i - x_j ≺ bounds[b]``.

        The per-lane twin of :meth:`constrain`: one constraint shape,
        a different (finite, encoded) bound per batch element.  The
        conformance monitor uses it to pin the observation clock to
        each session's own inter-event gap in a single call.  Lane for
        lane this replays the scalar kernel with that lane's bound, so
        the bit-identity contract carries over unchanged.
        """
        col_ji = m[:, j, i]
        cross = _vec_add_each(col_ji, bounds)
        np.logical_and(alive, cross >= LE_ZERO, out=alive)
        tighten = alive & (bounds < m[:, i, j])
        if not tighten.any():
            return
        m[tighten, i, j] = bounds[tighten]
        col_b = _vec_add_each(m[:, :, i], bounds[:, None])
        via = _outer_add(col_b, m[:, j, :])
        np.minimum(m, via, out=m, where=tighten[:, None, None])

    def up(self, m: np.ndarray) -> None:
        m[:, 1:, 0] = INF

    def reset(self, m: np.ndarray, x: int, value: int) -> None:
        row0 = m[:, 0, :].copy()
        col0 = m[:, :, 0].copy()
        m[:, x, :] = _vec_add_scalar(row0, encode(value, True))
        m[:, :, x] = _vec_add_scalar(col0, encode(-value, True))
        m[:, x, x] = LE_ZERO

    def assign_clock(self, m: np.ndarray, x: int, y: int) -> None:
        if x == y:
            return
        row_y = m[:, y, :].copy()
        col_y = m[:, :, y].copy()
        m[:, x, :] = row_y
        m[:, :, x] = col_y
        m[:, x, x] = LE_ZERO

    def free_many(self, m: np.ndarray, clocks) -> None:
        idx = np.asarray(clocks, dtype=np.intp)
        col0 = m[:, :, 0].copy()
        diagonal = m[:, idx, idx].copy()
        m[:, idx, :] = INF
        m[:, :, idx] = col0[:, :, None]
        m[:, idx[:, None], idx[None, :]] = INF
        m[:, idx, idx] = diagonal

    def close(self, m: np.ndarray) -> None:
        """Batched Floyd–Warshall (idempotent on canonical elements)."""
        for k in range(self.n):
            np.minimum(m, _outer_add(m[:, :, k], m[:, k, :]), out=m)

    def extrapolate_max(self, m: np.ndarray, alive: np.ndarray) -> None:
        """Extra_M widening + changed-only closure, per live element."""
        n = self.n
        vals = m >> 1
        finite_off = (m != INF) & _off_diagonal(n)[None, :, :]
        widen_up = finite_off & (vals > self._ceilings[None, :, None])
        widen_low = (finite_off & ~widen_up
                     & (vals < -self._ceilings[None, None, :]))
        changed = (widen_up.any(axis=(1, 2))
                   | widen_low.any(axis=(1, 2))) & alive
        if not changed.any():
            return
        np.copyto(m, INF, where=widen_up)
        np.copyto(m, np.broadcast_to(self._strict_floor,
                                     (m.shape[0], n, n)),
                  where=widen_low)
        sub = m[changed]
        self.close(sub)
        m[changed] = sub

    def extrapolate_lu(self, m: np.ndarray, alive: np.ndarray,
                       lu: tuple) -> None:
        """Extra⁺_LU widening + re-canonicalization, per live element.

        Produces exactly the scalar ``NumpyDBM.extrapolate_lu`` result
        (widen, then full closure) — but most elements never pay the
        O(n³) closure.  When every rule-1 hit of an element falls
        inside a *dead row* (lower bound beyond ``L(x_i)``: the whole
        row widens) or a *dead column* (lower bound beyond ``U(x_j)``),
        the closed form is known outright:

        * dead rows stay all-∞ — every path out of ``x_i`` starts with
          an ∞ edge;
        * a dead column's only surviving inbound edge is the row-0
          floor, so its closed entries are ``D[i][0] ⊕ (-U(x_j), <)``
          (row 0 itself lands on the floor, ``D[0][0] = (0,≤)``);
        * untouched entries of a canonical input stay canonical —
          loosening other entries can only lengthen their paths.

        Only elements with a *partial* widening (a rule-1 hit whose
        row and column both survive) fall back to the batched
        Floyd–Warshall.  On the case-study models that is ~25% of
        extrapolations, which is what makes the coarser operator pay
        off in wall time and not just in state counts.
        """
        n = self.n
        arrays = self._lu_arrays.get(lu)
        if arrays is None:
            low = np.array(lu[0], dtype=np.int64)
            up = np.array(lu[1], dtype=np.int64)
            arrays = self._lu_arrays[lu] = (low, up, (-up) << 1)
        low_arr, up_arr, strict_up = arrays
        vals = m >> 1
        off_diag = _off_diagonal(n)[None, :, :]
        finite_off = (m != INF) & off_diag
        row0_vals = vals[:, 0, :]
        row0_finite = m[:, 0, :] != INF
        row_dead = row0_finite & (-row0_vals > low_arr[None, :])
        col_dead = row0_finite & (-row0_vals > up_arr[None, :])
        r1 = finite_off & (vals > low_arr[None, :, None])
        r1[:, 0, :] = False  # row 0 follows the replacement rule
        full_kill = row_dead[:, :, None] | col_dead[:, None, :]
        widen = finite_off & (r1 | full_kill)
        widen[:, 0, :] = False
        replace0 = col_dead & finite_off[:, 0, :]
        changed = (widen.any(axis=(1, 2)) | replace0.any(axis=1)) & alive
        if not changed.any():
            return
        partial = r1.any(axis=(1, 2)) & changed
        if partial.any():
            partial &= (r1 & ~full_kill).any(axis=(1, 2))
        fast = changed & ~partial
        if fast.any():
            sel = fast[:, None, None]
            np.copyto(m, INF,
                      where=row_dead[:, :, None] & off_diag & sel)
            closed_col = _outer_add(
                m[:, :, 0],
                np.broadcast_to(strict_up, (m.shape[0], n)))
            np.copyto(m, closed_col,
                      where=col_dead[:, None, :] & off_diag & sel)
        if partial.any():
            sel = partial[:, None, None]
            np.copyto(m, INF, where=widen & sel)
            m0 = m[:, 0, :]
            np.copyto(m0, np.broadcast_to(strict_up, m0.shape),
                      where=replace0 & partial[:, None])
            sub = m[partial]
            self.close(sub)
            m[partial] = sub

    # -- whole-plan pipeline ------------------------------------------
    def run_plan(self, src_stack: np.ndarray, plan):
        """Run one successor plan over a stack of source zones.

        Returns ``(work, alive)``: the transformed ``(B, n, n)`` stack
        and the boolean survival mask, or ``(None, alive)`` for error
        plans (whose zone work stops at the guard; the caller raises
        the deferred :class:`~repro.ta.model.ModelError` for the first
        live element, matching the scalar explorer).
        """
        work = src_stack.copy()
        alive = np.ones(work.shape[0], dtype=bool)
        for i, j, bound in plan.guard_ops:
            self.constrain(work, alive, i, j, bound)
            if not alive.any():
                return work, alive
        if plan.error is not None:
            return None, alive
        for op in plan.zone_ops:
            if op[0] == "reset":
                self.reset(work, op[1], op[2])
            else:  # copy
                self.assign_clock(work, op[1], op[2])
        if plan.free_clocks:
            self.free_many(work, plan.free_clocks)
        for i, j, bound in plan.invariant_ops:
            self.constrain(work, alive, i, j, bound)
            if not alive.any():
                return work, alive
        if plan.delay:
            self.up(work)
            for i, j, bound in plan.invariant_ops:
                self.constrain(work, alive, i, j, bound)
        if plan.lu is not None:
            self.extrapolate_lu(work, alive, plan.lu)
        else:
            self.extrapolate_max(work, alive)
        return work, alive
