"""Passed-list zone stores for subsumption-aware exploration.

The explorer keeps, per discrete state, the antichain of stored zones
and answers two questions on every candidate successor:

* ``covers(zone)`` — is the candidate already included in a stored
  zone? (if so it is discarded);
* ``insert(zone, entry)`` — store the candidate, evicting every stored
  zone it subsumes and returning the waiting-list entries of the
  evicted zones so the explorer can mark them dead.

In the seed these were per-zone :meth:`DBM.includes` calls — by far
the hottest code in every experiment (millions of Python-level matrix
comparisons).  The buckets here batch the sweep over the whole
antichain: the reference bucket runs an early-exit elementwise loop
over the raw bound lists, the numpy bucket keeps the zones stacked in
one ``(capacity, n²)`` int64 array and answers both questions with a
single broadcast comparison.

Buckets deliberately reach into the backing storage (``zone._m``) of
their matching backend — they are the other half of each backend's
representation, paired with it in :mod:`repro.zones.backend`.  Stored
zones must never be mutated afterwards (the explorer guarantees this:
stored zones are freshly materialized and only read from then on).
"""

from __future__ import annotations

from typing import Any

__all__ = ["ReferencePassedBucket", "NumpyPassedBucket"]


class ReferencePassedBucket:
    """Antichain of list-backed DBMs with early-exit inclusion sweeps."""

    __slots__ = ("_rows", "entries")

    def __init__(self):
        self._rows: list[list[int]] = []
        self.entries: list[Any] = []

    def __len__(self) -> int:
        return len(self._rows)

    def covers(self, zone) -> bool:
        """True when a stored zone includes ``zone``."""
        m = zone._m
        for row in self._rows:
            for a, b in zip(row, m):
                if a < b:
                    break
            else:
                return True
        return False

    def insert(self, zone, entry) -> list:
        """Store ``zone``; return entries of evicted (subsumed) zones."""
        m = zone._m
        evicted: list[Any] = []
        kept_rows: list[list[int]] = []
        kept_entries: list[Any] = []
        for row, stored in zip(self._rows, self.entries):
            for a, b in zip(m, row):
                if a < b:
                    kept_rows.append(row)
                    kept_entries.append(stored)
                    break
            else:
                evicted.append(stored)
        kept_rows.append(m)
        kept_entries.append(entry)
        self._rows = kept_rows
        self.entries = kept_entries
        return evicted

    def commit_batch(self, zones, entries) -> list[bool]:
        """Ordered batch of ``covers``/``insert`` steps.

        Equivalent to the sequential ``covers(z) or insert(z, e)`` loop
        the explorer runs per candidate; evicted entries get their
        ``alive`` flag cleared here instead of being returned.  Returns
        one inserted-flag per candidate.
        """
        flags: list[bool] = []
        for zone, entry in zip(zones, entries):
            if self.covers(zone):
                flags.append(False)
                continue
            for evicted in self.insert(zone, entry):
                evicted.alive = False
            flags.append(True)
        return flags


class NumpyPassedBucket:
    """Antichain of numpy-backed DBMs stacked in one comparison array.

    Besides the row stack the bucket keeps two elementwise envelopes
    as O(n²) prefilters:

    * ``_upper`` — elementwise maximum of the stored rows.  A stored
      zone can only include a candidate whose every bound lies below
      the envelope, so a failed ``candidate ≤ upper`` test refutes
      ``covers`` with one vector comparison.
    * ``_lower`` — elementwise minimum of the stored rows.  A candidate
      can only evict a stored zone when it dominates the envelope, so
      a failed ``candidate ≥ lower`` test skips the eviction sweep.

    Eviction compacts the stack in place *and* recomputes both
    envelopes from the surviving rows.  (An earlier revision left the
    envelopes conservatively wide after evictions — still sound, but
    every subsequent broadcast sweep kept paying for contributions of
    rows that no longer existed, so the prefilters degraded to
    always-pass on long-lived buckets.)

    Storage width: the scalar ``covers``/``insert`` path keeps the
    stack in int64 (zones hand over their matrices without
    conversion).  The sharded explorer's :meth:`commit_batch` narrows
    the stack to int32 — encoded bounds are tiny, and ``INF`` maps to
    an order-preserving sentinel (``2³¹ − 1``) — which halves the
    bandwidth of the broadcast sweeps.  The conversion is lossless and
    reversible; a bound that does not fit (|value| ≥ 2³⁰, only
    possible with extreme user constants) forces the bucket back to
    int64 permanently.
    """

    __slots__ = ("_np", "_stack", "_count", "_upper", "_lower",
                 "entries", "_mode", "trusted_narrow", "_key_cols")

    #: Sentinel for ``INF`` in narrowed stacks; every representable
    #: finite bound is strictly smaller, so ordering is preserved.
    NARROW_INF = (1 << 31) - 1
    #: Finite bounds must lie strictly inside ±``NARROW_LIMIT`` to
    #: narrow losslessly.
    NARROW_LIMIT = 1 << 30

    _WIDE, _NARROW, _WIDE_FORCED = 0, 1, 2

    def __init__(self):
        import numpy
        self._np = numpy
        self._stack = None  # (capacity, n²), rows 0.._count valid
        self._count = 0
        self._upper = None
        self._lower = None
        self.entries: list[Any] = []
        self._mode = self._WIDE
        #: Set by the sharded explorer when the model's extrapolation
        #: ceilings prove every finite bound fits int32 — skips the
        #: per-batch range validation in :meth:`commit_batch`.
        self.trusted_narrow = False
        self._key_cols = None

    def __len__(self) -> int:
        return self._count

    # -- storage-width switching ----------------------------------------
    def _to_wide(self, forced: bool = False) -> None:
        """Restore the exact int64 stack from a narrowed one."""
        np = self._np
        if self._mode == self._NARROW and self._stack is not None:
            from repro.zones.bounds import INF
            wide = self._stack.astype(np.int64)
            wide[self._stack == self.NARROW_INF] = INF
            self._stack = wide
            if self._count:
                self._refresh_envelopes(self._count)
            else:
                self._upper = self._lower = None
        self._mode = self._WIDE_FORCED if forced else self._WIDE

    def _narrow_rows(self, rows):
        """int32 image of int64 rows, or ``None`` when out of range."""
        np = self._np
        if not self.trusted_narrow:
            from repro.zones.bounds import INF
            limit = self.NARROW_LIMIT
            valid = ((rows == INF)
                     | ((rows < limit) & (rows > -limit))).all()
            if not valid:
                return None
        return np.clip(rows, -self.NARROW_INF,
                       self.NARROW_INF).astype(np.int32)

    def _try_narrow(self) -> bool:
        """Narrow the stored stack for batched commits (idempotent)."""
        if self._mode == self._NARROW:
            return True
        if self._mode == self._WIDE_FORCED:
            return False
        count = self._count
        if self._stack is None or count == 0:
            self._stack = None
            self._upper = self._lower = None
            self._mode = self._NARROW
            return True
        narrowed = self._narrow_rows(self._stack[:count])
        if narrowed is None:
            self._mode = self._WIDE_FORCED
            return False
        self._stack = narrowed
        self._mode = self._NARROW
        self._refresh_envelopes(count)
        return True

    def covers(self, zone) -> bool:
        """True when a stored zone includes ``zone``."""
        if self._count == 0:
            return False
        if self._mode == self._NARROW:
            self._to_wide()
        row = zone._m.reshape(-1)
        if not (row <= self._upper).all():
            return False
        stack = self._stack[:self._count]
        return bool((stack >= row).all(axis=1).any())

    def insert(self, zone, entry) -> list:
        """Store ``zone``; return entries of evicted (subsumed) zones."""
        np = self._np
        if self._mode == self._NARROW:
            self._to_wide()
        row = zone._m.reshape(-1)
        count = self._count
        evicted: list[Any] = []
        if self._stack is None:
            self._stack = np.empty((4, row.shape[0]), dtype=np.int64)
            self._upper = row.copy()
            self._lower = row.copy()
        else:
            compacted = False
            if count and (row >= self._lower).all():
                stack = self._stack[:count]
                subsumed = (row >= stack).all(axis=1)
                if subsumed.any():
                    flags = subsumed.tolist()
                    evicted = [e for e, dead in zip(self.entries, flags)
                               if dead]
                    self.entries = [e for e, dead
                                    in zip(self.entries, flags)
                                    if not dead]
                    keep = ~subsumed
                    kept = int(keep.sum())
                    # Fancy indexing copies; in-place compaction is safe.
                    self._stack[:kept] = stack[keep]
                    count = kept
                    compacted = True
            if compacted:
                # Rebuild exact envelopes over live rows + the new one.
                self._refresh_envelopes(count, row)
            else:
                np.maximum(self._upper, row, out=self._upper)
                np.minimum(self._lower, row, out=self._lower)
        if count == self._stack.shape[0]:
            grown = np.empty((2 * count, row.shape[0]), dtype=np.int64)
            grown[:count] = self._stack[:count]
            self._stack = grown
        self._stack[count] = row
        self.entries.append(entry)
        self._count = count + 1
        return evicted

    def _key_columns(self, width: int):
        """Indices of row 0 and column 0 in a flattened ``n × n`` DBM."""
        cols = self._key_cols
        if cols is None or cols[-1] >= width:
            np = self._np
            n = int(round(width ** 0.5))
            cols = np.concatenate(
                [np.arange(n, dtype=np.intp),
                 np.arange(1, n, dtype=np.intp) * n])
            cols.sort()
            self._key_cols = cols
        return cols

    def _refresh_envelopes(self, count: int, extra_row=None) -> None:
        """Exact elementwise max/min envelopes of the live rows."""
        np = self._np
        live = self._stack[:count]
        if (self._upper is None
                or self._upper.dtype != self._stack.dtype):
            width = self._stack.shape[1]
            self._upper = np.empty(width, dtype=self._stack.dtype)
            self._lower = np.empty(width, dtype=self._stack.dtype)
        if count:
            np.max(live, axis=0, out=self._upper)
            np.min(live, axis=0, out=self._lower)
            if extra_row is not None:
                np.maximum(self._upper, extra_row, out=self._upper)
                np.minimum(self._lower, extra_row, out=self._lower)
        elif extra_row is not None:
            self._upper[:] = extra_row
            self._lower[:] = extra_row

    def commit_batch(self, rows, entries) -> list[bool]:
        """Ordered batch of ``covers``/``insert`` steps on row vectors.

        ``rows`` is a ``(C, n²)`` int64 array of candidate snapshots in
        the explorer's global commit order.  The outcome is
        bit-identical to running ``covers``/``insert`` per candidate in
        that order — the proof rests on coverage being monotone (an
        eviction replaces a stored zone by a superset, so the covered
        set only ever grows), which lets the pre-existing stack be
        compared against the whole batch in one broadcast:

        * ``pre[j]`` — candidate ``j`` covered by the wave-start stack,
        * ``inc[i, j]`` — candidate ``i`` includes candidate ``j``,
        * ``evict[i, s]`` — candidate ``i`` includes stored row ``s``.

        A candidate is inserted iff neither ``pre`` nor an
        earlier-inserted candidate covers it; insertions evict stored
        rows and earlier-inserted candidates they include (those
        entries get ``alive`` cleared).  The stack is rebuilt compacted
        and the envelopes exactly recomputed.

        The intra-batch resolution itself is one triangular broadcast
        instead of an ordered Python scan: ``j`` is blocked iff
        ``pre[j]`` or some *earlier, non-pre* candidate includes it —
        equivalent to "some earlier inserted candidate includes it"
        because inclusion is transitive (a blocked earlier includer is
        itself included by an inserted one, which then includes ``j``)
        and ``pre`` is inclusion-upward-closed (a stored row covering
        the includer covers ``j`` too).  Likewise an inserted
        candidate dies iff a *later inserted* candidate includes it.

        Comparisons run on the narrowed int32 stack when the bounds
        fit (see the class docstring) — narrowing is order-preserving,
        so the verdicts are identical to the int64 sweeps.
        """
        np = self._np
        if self._try_narrow():
            narrowed = self._narrow_rows(rows)
            if narrowed is not None:
                rows = narrowed
            else:
                self._to_wide(forced=True)
        n_cand = len(entries)
        count = self._count
        if count:
            stack = self._stack[:count]
            # Envelope prefilters (same as the scalar sweeps): only
            # candidates below the upper envelope can be covered, only
            # candidates above the lower envelope can evict.
            may_cover = (rows <= self._upper).all(axis=1)
            may_evict = (rows >= self._lower).all(axis=1).tolist()
            pre = may_cover.copy()
            if may_cover.any():
                sub = rows[may_cover]
                # Staged sweep: compare the discriminating coordinates
                # first (clock upper/lower bounds — row 0 and column 0
                # of the DBM), then verify surviving (candidate,
                # stored) pairs on the full row.  Sound because a
                # failed subset comparison refutes the full one.
                key_cols = self._key_columns(rows.shape[1])
                maybe = (stack[:, key_cols][None, :, :]
                         >= sub[:, key_cols][:, None, :]).all(axis=2)
                verdict = maybe.any(axis=1)
                for c in np.nonzero(verdict)[0]:
                    hits = stack[np.nonzero(maybe[c])[0]]
                    verdict[c] = bool(
                        (hits >= sub[c]).all(axis=1).any())
                pre[may_cover] = verdict
        else:
            pre = np.zeros(n_cand, dtype=bool)
            may_evict = None

        if n_cand > 1:
            inc = (rows[:, None, :] >= rows[None, :, :]).all(axis=2)
            # earlier[i, j] ⇔ i precedes j in the commit order.
            earlier = np.triu(np.ones((n_cand, n_cand), dtype=bool),
                              k=1)
            blocked = (inc & earlier & ~pre[:, None]).any(axis=0)
            ins_mask = ~pre & ~blocked
            # later[j, i] ⇔ j follows i: an inserted candidate dies
            # when a later inserted candidate includes it.
            killed = ((inc & earlier.T & ins_mask[:, None]).any(axis=0)
                      & ins_mask)
        else:
            ins_mask = ~pre
            killed = np.zeros(n_cand, dtype=bool)

        stored_alive = [True] * count
        if count:
            evictors = np.flatnonzero(
                ins_mask & np.asarray(may_evict, dtype=bool))
            if evictors.size:
                dead = (rows[evictors][:, None, :]
                        >= stack[None, :, :]).all(axis=2).any(axis=0)
                for s in np.flatnonzero(dead):
                    stored_alive[s] = False
                    self.entries[s].alive = False
        for i in np.flatnonzero(killed):
            entries[i].alive = False
        inserted = np.flatnonzero(ins_mask).tolist()
        cand_alive = (ins_mask & ~killed).tolist()
        flags = ins_mask.tolist()
        if not inserted:
            return flags

        width = rows.shape[1]
        live = [j for j in inserted if cand_alive[j]]
        no_evictions = (len(live) == len(inserted)
                        and (not count or all(stored_alive)))
        if no_evictions:
            # Append-only fast path (the overwhelmingly common case):
            # grow in place exactly like the sequential ``insert``.
            need = count + len(live)
            if self._stack is None:
                capacity = max(4, need)
                self._stack = np.empty((capacity, width),
                                       dtype=rows.dtype)
                self._upper = rows[live[0]].copy()
                self._lower = rows[live[0]].copy()
            elif need > self._stack.shape[0]:
                capacity = max(2 * self._stack.shape[0], need)
                grown = np.empty((capacity, width),
                                 dtype=self._stack.dtype)
                grown[:count] = self._stack[:count]
                self._stack = grown
            for offset, j in enumerate(live):
                row = rows[j]
                self._stack[count + offset] = row
                np.maximum(self._upper, row, out=self._upper)
                np.minimum(self._lower, row, out=self._lower)
            self._count = need
            self.entries.extend(entries[j] for j in live)
            return flags

        # Eviction path: compact the stack and rebuild exact envelopes.
        new_entries = [e for e, alive in zip(self.entries, stored_alive)
                       if alive]
        new_entries.extend(entries[j] for j in live)
        new_count = len(new_entries)
        old_stack = self._stack
        if old_stack is None or new_count > old_stack.shape[0]:
            capacity = max(4, old_stack.shape[0] * 2
                           if old_stack is not None else 4, new_count)
            self._stack = np.empty((capacity, width), dtype=rows.dtype)
        pos = 0
        if count:
            keep = np.fromiter(stored_alive, dtype=bool, count=count)
            kept = int(keep.sum())
            if kept:
                self._stack[:kept] = stack[keep]
            pos = kept
        for j in live:
            self._stack[pos] = rows[j]
            pos += 1
        self._count = pos
        self.entries = new_entries
        self._refresh_envelopes(pos)
        return flags
