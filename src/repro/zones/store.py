"""Passed-list zone stores for subsumption-aware exploration.

The explorer keeps, per discrete state, the antichain of stored zones
and answers two questions on every candidate successor:

* ``covers(zone)`` — is the candidate already included in a stored
  zone? (if so it is discarded);
* ``insert(zone, entry)`` — store the candidate, evicting every stored
  zone it subsumes and returning the waiting-list entries of the
  evicted zones so the explorer can mark them dead.

In the seed these were per-zone :meth:`DBM.includes` calls — by far
the hottest code in every experiment (millions of Python-level matrix
comparisons).  The buckets here batch the sweep over the whole
antichain: the reference bucket runs an early-exit elementwise loop
over the raw bound lists, the numpy bucket keeps the zones stacked in
one ``(capacity, n²)`` int64 array and answers both questions with a
single broadcast comparison.

Buckets deliberately reach into the backing storage (``zone._m``) of
their matching backend — they are the other half of each backend's
representation, paired with it in :mod:`repro.zones.backend`.  Stored
zones must never be mutated afterwards (the explorer guarantees this:
stored zones are freshly materialized and only read from then on).
"""

from __future__ import annotations

from typing import Any

__all__ = ["ReferencePassedBucket", "NumpyPassedBucket"]


class ReferencePassedBucket:
    """Antichain of list-backed DBMs with early-exit inclusion sweeps."""

    __slots__ = ("_rows", "entries")

    def __init__(self):
        self._rows: list[list[int]] = []
        self.entries: list[Any] = []

    def __len__(self) -> int:
        return len(self._rows)

    def covers(self, zone) -> bool:
        """True when a stored zone includes ``zone``."""
        m = zone._m
        for row in self._rows:
            for a, b in zip(row, m):
                if a < b:
                    break
            else:
                return True
        return False

    def insert(self, zone, entry) -> list:
        """Store ``zone``; return entries of evicted (subsumed) zones."""
        m = zone._m
        evicted: list[Any] = []
        kept_rows: list[list[int]] = []
        kept_entries: list[Any] = []
        for row, stored in zip(self._rows, self.entries):
            for a, b in zip(m, row):
                if a < b:
                    kept_rows.append(row)
                    kept_entries.append(stored)
                    break
            else:
                evicted.append(stored)
        kept_rows.append(m)
        kept_entries.append(entry)
        self._rows = kept_rows
        self.entries = kept_entries
        return evicted


class NumpyPassedBucket:
    """Antichain of numpy-backed DBMs stacked in one comparison array.

    Besides the row stack the bucket keeps two elementwise envelopes
    as O(n²) prefilters:

    * ``_upper`` — elementwise maximum of the stored rows.  A stored
      zone can only include a candidate whose every bound lies below
      the envelope, so a failed ``candidate ≤ upper`` test refutes
      ``covers`` with one vector comparison.
    * ``_lower`` — elementwise minimum of the stored rows.  A candidate
      can only evict a stored zone when it dominates the envelope, so
      a failed ``candidate ≥ lower`` test skips the eviction sweep.

    Evictions leave the envelopes conservatively wide (they are not
    recomputed), which keeps them sound as prefilters.
    """

    __slots__ = ("_np", "_stack", "_count", "_upper", "_lower",
                 "entries")

    def __init__(self):
        import numpy
        self._np = numpy
        self._stack = None  # (capacity, n²) int64, rows 0.._count valid
        self._count = 0
        self._upper = None
        self._lower = None
        self.entries: list[Any] = []

    def __len__(self) -> int:
        return self._count

    def covers(self, zone) -> bool:
        """True when a stored zone includes ``zone``."""
        if self._count == 0:
            return False
        row = zone._m.reshape(-1)
        if not (row <= self._upper).all():
            return False
        stack = self._stack[:self._count]
        return bool((stack >= row).all(axis=1).any())

    def insert(self, zone, entry) -> list:
        """Store ``zone``; return entries of evicted (subsumed) zones."""
        np = self._np
        row = zone._m.reshape(-1)
        count = self._count
        evicted: list[Any] = []
        if self._stack is None:
            self._stack = np.empty((4, row.shape[0]), dtype=np.int64)
            self._upper = row.copy()
            self._lower = row.copy()
        else:
            if count and (row >= self._lower).all():
                stack = self._stack[:count]
                subsumed = (row >= stack).all(axis=1)
                if subsumed.any():
                    flags = subsumed.tolist()
                    evicted = [e for e, dead in zip(self.entries, flags)
                               if dead]
                    self.entries = [e for e, dead
                                    in zip(self.entries, flags)
                                    if not dead]
                    keep = ~subsumed
                    kept = int(keep.sum())
                    # Fancy indexing copies; in-place compaction is safe.
                    self._stack[:kept] = stack[keep]
                    count = kept
            np.maximum(self._upper, row, out=self._upper)
            np.minimum(self._lower, row, out=self._lower)
        if count == self._stack.shape[0]:
            grown = np.empty((2 * count, row.shape[0]), dtype=np.int64)
            grown[:count] = self._stack[:count]
            self._stack = grown
        self._stack[count] = row
        self.entries.append(entry)
        self._count = count + 1
        return evicted
