"""Zone (difference bound matrix) substrate for timed-automata checking.

The list-based :class:`DBM` is the portable reference backend; a
vectorized numpy backend lives in :mod:`repro.zones.dbm_numpy` and is
auto-selected via :mod:`repro.zones.backend` (``REPRO_ZONE_BACKEND``
environment variable, ``set_backend`` or the CLI ``--zone-backend``
flag) when numpy is importable.
"""

from repro.zones.backend import (
    ZoneBackend,
    available_backends,
    resolve_backend,
    set_backend,
)
from repro.zones.bounds import (
    INF,
    LE_ZERO,
    LT_ZERO,
    bound_add,
    bound_as_text,
    bound_is_weak,
    bound_value,
    decode,
    encode,
    negate_weak,
)
from repro.zones.common import ZoneMatrix
from repro.zones.dbm import DBM

__all__ = [
    "DBM",
    "INF",
    "LE_ZERO",
    "LT_ZERO",
    "ZoneBackend",
    "ZoneMatrix",
    "available_backends",
    "bound_add",
    "bound_as_text",
    "bound_is_weak",
    "bound_value",
    "decode",
    "encode",
    "negate_weak",
    "resolve_backend",
    "set_backend",
]
