"""Zone (difference bound matrix) substrate for timed-automata checking."""

from repro.zones.bounds import (
    INF,
    LE_ZERO,
    LT_ZERO,
    bound_add,
    bound_as_text,
    bound_is_weak,
    bound_value,
    decode,
    encode,
    negate_weak,
)
from repro.zones.dbm import DBM

__all__ = [
    "DBM",
    "INF",
    "LE_ZERO",
    "LT_ZERO",
    "bound_add",
    "bound_as_text",
    "bound_is_weak",
    "bound_value",
    "decode",
    "encode",
    "negate_weak",
]
