/* Native DBM kernel for the `native` zone backend.
 *
 * Scalar and batched difference-bound-matrix operations, bit-identical
 * to the reference implementation in repro/zones/dbm.py (and therefore
 * to repro/zones/dbm_numpy.py — the differential lockstep tests in
 * tests/test_zones_backends.py drive all three in parallel).  The
 * Python-side wrapper (repro/zones/dbm_native.py) owns the `_empty` /
 * `_frozen` bookkeeping; this module only mutates the raw int64
 * matrix, which it reaches through the buffer protocol so the wrapper
 * can keep using a plain numpy array (and everything downstream —
 * passed-list buckets, the intern table, `np.stack` in the sharded
 * explorer — keeps working unchanged).
 *
 * Encoding contract (repro/zones/bounds.py): a bound is
 * `(value << 1) | weak`, INF is `1 << 62`, `bound_add` adds values,
 * ANDs weakness, and is absorbed by INF.  int64 holds every finite
 * bound the framework produces; INF is tested for before any shift or
 * add, exactly like the scalar helpers.
 *
 * Loop orders replicate the reference backend statement for statement
 * (including the in-place read/write interleavings of `close`,
 * `constrain` and `reset`) so the outputs agree bit for bit, not just
 * semantically.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

static const int64_t K_INF = ((int64_t)1) << 62;
#define K_LE_ZERO 1

/* Matrices in this framework stay far below this (well under 16
 * clocks); a hard cap lets every kernel use stack scratch instead of
 * malloc.  The Python wrapper re-raises this as a clean ValueError. */
#define MAX_CLOCKS 64
#define MAX_OPS 256

static inline int64_t
badd(int64_t a, int64_t b)
{
    if (a == K_INF || b == K_INF)
        return K_INF;
    return (((a >> 1) + (b >> 1)) << 1) | (a & b & 1);
}

/* ------------------------------------------------------------------ */
/* Core kernels on a raw row-major n x n int64 matrix                  */
/* ------------------------------------------------------------------ */

static void
k_close(int64_t *m, int n)
{
    for (int k = 0; k < n; k++) {
        const int64_t *row_k = m + (size_t)k * n;
        for (int i = 0; i < n; i++) {
            int64_t d_ik = m[(size_t)i * n + k];
            if (d_ik == K_INF)
                continue;
            int64_t *row_i = m + (size_t)i * n;
            for (int j = 0; j < n; j++) {
                int64_t d_kj = row_k[j];
                if (d_kj == K_INF)
                    continue;
                int64_t via = (((d_ik >> 1) + (d_kj >> 1)) << 1)
                              | (d_ik & d_kj & 1);
                if (via < row_i[j])
                    row_i[j] = via;
            }
        }
    }
}

static void
k_close_clock(int64_t *m, int n, int x)
{
    const int64_t *row_x = m + (size_t)x * n;
    for (int i = 0; i < n; i++) {
        int64_t d_ix = m[(size_t)i * n + x];
        if (d_ix == K_INF)
            continue;
        int64_t *row_i = m + (size_t)i * n;
        for (int j = 0; j < n; j++) {
            int64_t d_xj = row_x[j];
            if (d_xj == K_INF)
                continue;
            int64_t via = (((d_ix >> 1) + (d_xj >> 1)) << 1)
                          | (d_ix & d_xj & 1);
            if (via < row_i[j])
                row_i[j] = via;
        }
    }
}

static int
k_is_empty(const int64_t *m, int n)
{
    for (int i = 0; i < n; i++)
        if (m[(size_t)i * n + i] < K_LE_ZERO)
            return 1;
    return 0;
}

/* Returns 1 when the constraint contradicts the zone (the diagonal
 * witness is written and the caller must set the sticky empty flag),
 * 0 otherwise. */
static int
k_constrain(int64_t *m, int n, int i, int j, int64_t bound)
{
    int64_t cross = badd(m[(size_t)j * n + i], bound);
    if (cross < K_LE_ZERO) {
        m[(size_t)i * n + i] = cross;
        return 1;
    }
    if (bound < m[(size_t)i * n + j]) {
        m[(size_t)i * n + j] = bound;
        /* Re-close only via the two touched clocks. */
        const int64_t *row_j = m + (size_t)j * n;
        for (int a = 0; a < n; a++) {
            int64_t d_ai = m[(size_t)a * n + i];
            if (d_ai == K_INF)
                continue;
            int64_t base = badd(d_ai, bound);
            int64_t *row_a = m + (size_t)a * n;
            for (int b = 0; b < n; b++) {
                int64_t d_jb = row_j[b];
                if (d_jb == K_INF)
                    continue;
                int64_t via = badd(base, d_jb);
                if (via < row_a[b])
                    row_a[b] = via;
            }
        }
    }
    return 0;
}

static void
k_up(int64_t *m, int n)
{
    for (int i = 1; i < n; i++)
        m[(size_t)i * n] = K_INF;
}

static void
k_reset(int64_t *m, int n, int x, int64_t value)
{
    int64_t pos = (value << 1) | 1;
    int64_t neg = ((-value) << 1) | 1;
    for (int j = 0; j < n; j++) {
        m[(size_t)x * n + j] = badd(pos, m[j]);
        m[(size_t)j * n + x] = badd(m[(size_t)j * n], neg);
    }
    m[(size_t)x * n + x] = K_LE_ZERO;
}

static void
k_assign(int64_t *m, int n, int x, int y)
{
    if (x == y)
        return;
    for (int j = 0; j < n; j++) {
        if (j != x) {
            m[(size_t)x * n + j] = m[(size_t)y * n + j];
            m[(size_t)j * n + x] = m[(size_t)j * n + y];
        }
    }
    m[(size_t)x * n + x] = K_LE_ZERO;
}

static void
k_free(int64_t *m, int n, int x)
{
    for (int j = 0; j < n; j++) {
        if (j != x) {
            m[(size_t)x * n + j] = K_INF;
            m[(size_t)j * n + x] = m[(size_t)j * n];
        }
    }
}

static void
k_free_many(int64_t *m, int n, const int *clocks, int nc)
{
    for (int c = 0; c < nc; c++)
        k_free(m, n, clocks[c]);
}

static int
k_includes(const int64_t *a, const int64_t *b, int n)
{
    size_t total = (size_t)n * n;
    for (size_t k = 0; k < total; k++)
        if (a[k] < b[k])
            return 0;
    return 1;
}

/* Extra_M widening pass.  Returns 1 when any entry changed (the
 * caller re-closes), 0 otherwise. */
static int
k_extra_max(int64_t *m, int n, const int64_t *mx)
{
    int changed = 0;
    for (int i = 0; i < n; i++) {
        int64_t m_i = mx[i];
        int64_t *row = m + (size_t)i * n;
        for (int j = 0; j < n; j++) {
            if (i == j)
                continue;
            int64_t b = row[j];
            if (b == K_INF)
                continue;
            int64_t value = b >> 1;
            if (value > m_i) {
                row[j] = K_INF;
                changed = 1;
            }
            else if (value < -mx[j]) {
                row[j] = (-mx[j]) << 1; /* encode(-mx[j], strict) */
                changed = 1;
            }
        }
    }
    return changed;
}

/* Extra+_LU widening pass on the pre-pass row-0 snapshot.  Returns 1
 * when any entry changed. */
static int
k_extra_lu(int64_t *m, int n, const int64_t *low, const int64_t *up)
{
    int64_t row0[MAX_CLOCKS];
    memcpy(row0, m, (size_t)n * sizeof(int64_t));
    int changed = 0;
    for (int i = 1; i < n; i++) {
        int64_t l_i = low[i];
        int64_t *row = m + (size_t)i * n;
        int row_dead = row0[i] != K_INF && -(row0[i] >> 1) > l_i;
        for (int j = 0; j < n; j++) {
            if (i == j)
                continue;
            int64_t b = row[j];
            if (b == K_INF)
                continue;
            if (row_dead || (b >> 1) > l_i
                || (row0[j] != K_INF && -(row0[j] >> 1) > up[j])) {
                row[j] = K_INF;
                changed = 1;
            }
        }
    }
    for (int j = 1; j < n; j++) {
        int64_t b = row0[j];
        if (b != K_INF && -(b >> 1) > up[j]) {
            m[j] = (-up[j]) << 1; /* encode(-up[j], strict) */
            changed = 1;
        }
    }
    return changed;
}

/* ------------------------------------------------------------------ */
/* Buffer/argument helpers                                             */
/* ------------------------------------------------------------------ */

static int
mat_acquire(PyObject *obj, Py_buffer *view, int flags,
            Py_ssize_t expect_items, int64_t **out)
{
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->itemsize != (Py_ssize_t)sizeof(int64_t)
        || view->len != expect_items * (Py_ssize_t)sizeof(int64_t)) {
        PyBuffer_Release(view);
        PyErr_SetString(PyExc_ValueError,
                        "matrix buffer has unexpected itemsize/length");
        return -1;
    }
    *out = (int64_t *)view->buf;
    return 0;
}

static int
check_n(int n)
{
    if (n < 1 || n > MAX_CLOCKS) {
        PyErr_Format(PyExc_ValueError,
                     "native kernel supports 1..%d clocks, got %d",
                     MAX_CLOCKS, n);
        return -1;
    }
    return 0;
}

/* Parse a sequence of per-clock ints into a stack array. */
static int
parse_vec(PyObject *seq, int n, int64_t *out, const char *what)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    if (fast == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(fast) != n) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "need one %s per clock", what);
        return -1;
    }
    for (int k = 0; k < n; k++) {
        int64_t v = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, k));
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        out[k] = v;
    }
    Py_DECREF(fast);
    return 0;
}

typedef struct {
    int i;
    int j;
    int64_t bound;
} cop_t;

/* Parse a sequence of (i, j, bound) constraint triples. */
static int
parse_cops(PyObject *seq, int n, cop_t *out, int *count, const char *what)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence of ops");
    if (fast == NULL)
        return -1;
    Py_ssize_t sz = PySequence_Fast_GET_SIZE(fast);
    if (sz > MAX_OPS) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "too many %s ops (max %d)",
                     what, MAX_OPS);
        return -1;
    }
    for (Py_ssize_t k = 0; k < sz; k++) {
        PyObject *item = PySequence_Fast_GET_ITEM(fast, k);
        PyObject *ifast = PySequence_Fast(item, "op must be (i, j, bound)");
        if (ifast == NULL) {
            Py_DECREF(fast);
            return -1;
        }
        if (PySequence_Fast_GET_SIZE(ifast) != 3) {
            Py_DECREF(ifast);
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "op must be (i, j, bound)");
            return -1;
        }
        long i = PyLong_AsLong(PySequence_Fast_GET_ITEM(ifast, 0));
        long j = PyLong_AsLong(PySequence_Fast_GET_ITEM(ifast, 1));
        int64_t bound =
            PyLong_AsLongLong(PySequence_Fast_GET_ITEM(ifast, 2));
        Py_DECREF(ifast);
        if (PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (i < 0 || i >= n || j < 0 || j >= n) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "op clock index out of range");
            return -1;
        }
        out[k].i = (int)i;
        out[k].j = (int)j;
        out[k].bound = bound;
    }
    *count = (int)sz;
    Py_DECREF(fast);
    return 0;
}

typedef struct {
    int kind; /* 0 = reset (x := value), 1 = copy (x := y) */
    int x;
    int64_t yv;
} zop_t;

/* Parse a sequence of (kind, x, value_or_y) zone-op triples. */
static int
parse_zops(PyObject *seq, int n, zop_t *out, int *count)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence of zone ops");
    if (fast == NULL)
        return -1;
    Py_ssize_t sz = PySequence_Fast_GET_SIZE(fast);
    if (sz > MAX_OPS) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "too many zone ops (max %d)",
                     MAX_OPS);
        return -1;
    }
    for (Py_ssize_t k = 0; k < sz; k++) {
        PyObject *item = PySequence_Fast_GET_ITEM(fast, k);
        PyObject *ifast =
            PySequence_Fast(item, "zone op must be (kind, x, value)");
        if (ifast == NULL) {
            Py_DECREF(fast);
            return -1;
        }
        if (PySequence_Fast_GET_SIZE(ifast) != 3) {
            Py_DECREF(ifast);
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError,
                            "zone op must be (kind, x, value)");
            return -1;
        }
        long kind = PyLong_AsLong(PySequence_Fast_GET_ITEM(ifast, 0));
        long x = PyLong_AsLong(PySequence_Fast_GET_ITEM(ifast, 1));
        int64_t yv = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(ifast, 2));
        Py_DECREF(ifast);
        if (PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if ((kind != 0 && kind != 1) || x < 0 || x >= n
            || (kind == 1 && (yv < 0 || yv >= n))) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "zone op out of range");
            return -1;
        }
        out[k].kind = (int)kind;
        out[k].x = (int)x;
        out[k].yv = yv;
    }
    *count = (int)sz;
    Py_DECREF(fast);
    return 0;
}

/* Parse a sequence of clock indices. */
static int
parse_clocks(PyObject *seq, int n, int *out, int *count)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence of clocks");
    if (fast == NULL)
        return -1;
    Py_ssize_t sz = PySequence_Fast_GET_SIZE(fast);
    if (sz > MAX_CLOCKS) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_ValueError, "too many clocks to free");
        return -1;
    }
    for (Py_ssize_t k = 0; k < sz; k++) {
        long x = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, k));
        if (x == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (x < 0 || x >= n) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "clock index out of range");
            return -1;
        }
        out[k] = (int)x;
    }
    *count = (int)sz;
    Py_DECREF(fast);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Python-facing scalar operations                                     */
/* ------------------------------------------------------------------ */

#define RW_FLAGS (PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE)
#define RO_FLAGS PyBUF_C_CONTIGUOUS

static PyObject *
py_close(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n;
    if (!PyArg_ParseTuple(args, "Oi", &mobj, &n) || check_n(n) < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_close(m, n);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_close_clock(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n, x;
    if (!PyArg_ParseTuple(args, "Oii", &mobj, &n, &x) || check_n(n) < 0)
        return NULL;
    if (x < 0 || x >= n) {
        PyErr_SetString(PyExc_ValueError, "clock index out of range");
        return NULL;
    }
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_close_clock(m, n, x);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_is_empty(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n;
    if (!PyArg_ParseTuple(args, "Oi", &mobj, &n) || check_n(n) < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RO_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    int empty = k_is_empty(m, n);
    PyBuffer_Release(&view);
    return PyBool_FromLong(empty);
}

static PyObject *
py_constrain(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n, i, j;
    long long bound;
    if (!PyArg_ParseTuple(args, "OiiiL", &mobj, &n, &i, &j, &bound)
        || check_n(n) < 0)
        return NULL;
    if (i < 0 || i >= n || j < 0 || j >= n) {
        PyErr_SetString(PyExc_ValueError, "clock index out of range");
        return NULL;
    }
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    int contradiction = k_constrain(m, n, i, j, (int64_t)bound);
    PyBuffer_Release(&view);
    return PyLong_FromLong(contradiction);
}

static PyObject *
py_constrain_all(PyObject *self, PyObject *args)
{
    PyObject *mobj, *ops;
    int n;
    if (!PyArg_ParseTuple(args, "OiO", &mobj, &n, &ops) || check_n(n) < 0)
        return NULL;
    cop_t cops[MAX_OPS];
    int nops;
    if (parse_cops(ops, n, cops, &nops, "constraint") < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    int alive = 1;
    for (int k = 0; k < nops; k++) {
        if (k_constrain(m, n, cops[k].i, cops[k].j, cops[k].bound)) {
            alive = 0;
            break;
        }
    }
    PyBuffer_Release(&view);
    return PyLong_FromLong(alive);
}

static PyObject *
py_up(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n;
    if (!PyArg_ParseTuple(args, "Oi", &mobj, &n) || check_n(n) < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_up(m, n);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_reset(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n, x;
    long long value;
    if (!PyArg_ParseTuple(args, "OiiL", &mobj, &n, &x, &value)
        || check_n(n) < 0)
        return NULL;
    if (x < 0 || x >= n) {
        PyErr_SetString(PyExc_ValueError, "clock index out of range");
        return NULL;
    }
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_reset(m, n, x, (int64_t)value);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_assign(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n, x, y;
    if (!PyArg_ParseTuple(args, "Oiii", &mobj, &n, &x, &y) || check_n(n) < 0)
        return NULL;
    if (x < 0 || x >= n || y < 0 || y >= n) {
        PyErr_SetString(PyExc_ValueError, "clock index out of range");
        return NULL;
    }
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_assign(m, n, x, y);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_free_clock(PyObject *self, PyObject *args)
{
    PyObject *mobj;
    int n, x;
    if (!PyArg_ParseTuple(args, "Oii", &mobj, &n, &x) || check_n(n) < 0)
        return NULL;
    if (x < 0 || x >= n) {
        PyErr_SetString(PyExc_ValueError, "clock index out of range");
        return NULL;
    }
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_free(m, n, x);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_free_many(PyObject *self, PyObject *args)
{
    PyObject *mobj, *clocks;
    int n;
    if (!PyArg_ParseTuple(args, "OiO", &mobj, &n, &clocks) || check_n(n) < 0)
        return NULL;
    int idx[MAX_CLOCKS];
    int nc;
    if (parse_clocks(clocks, n, idx, &nc) < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    k_free_many(m, n, idx, nc);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

static PyObject *
py_includes(PyObject *self, PyObject *args)
{
    PyObject *aobj, *bobj;
    int n;
    if (!PyArg_ParseTuple(args, "OOi", &aobj, &bobj, &n) || check_n(n) < 0)
        return NULL;
    Py_buffer va, vb;
    int64_t *a, *b;
    if (mat_acquire(aobj, &va, RO_FLAGS, (Py_ssize_t)n * n, &a) < 0)
        return NULL;
    if (mat_acquire(bobj, &vb, RO_FLAGS, (Py_ssize_t)n * n, &b) < 0) {
        PyBuffer_Release(&va);
        return NULL;
    }
    int inc = k_includes(a, b, n);
    PyBuffer_Release(&vb);
    PyBuffer_Release(&va);
    return PyBool_FromLong(inc);
}

static PyObject *
py_extrapolate_max(PyObject *self, PyObject *args)
{
    PyObject *mobj, *ceil_obj;
    int n;
    if (!PyArg_ParseTuple(args, "OiO", &mobj, &n, &ceil_obj)
        || check_n(n) < 0)
        return NULL;
    int64_t mx[MAX_CLOCKS];
    if (parse_vec(ceil_obj, n, mx, "max constant") < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    int changed = k_extra_max(m, n, mx);
    if (changed)
        k_close(m, n);
    PyBuffer_Release(&view);
    return PyLong_FromLong(changed);
}

static PyObject *
py_extrapolate_lu(PyObject *self, PyObject *args)
{
    PyObject *mobj, *low_obj, *up_obj;
    int n;
    if (!PyArg_ParseTuple(args, "OiOO", &mobj, &n, &low_obj, &up_obj)
        || check_n(n) < 0)
        return NULL;
    int64_t low[MAX_CLOCKS], up[MAX_CLOCKS];
    if (parse_vec(low_obj, n, low, "lower bound") < 0
        || parse_vec(up_obj, n, up, "upper bound") < 0)
        return NULL;
    Py_buffer view;
    int64_t *m;
    if (mat_acquire(mobj, &view, RW_FLAGS, (Py_ssize_t)n * n, &m) < 0)
        return NULL;
    int changed = k_extra_lu(m, n, low, up);
    if (changed)
        k_close(m, n);
    PyBuffer_Release(&view);
    return PyLong_FromLong(changed);
}

/* ------------------------------------------------------------------ */
/* Batched wave kernel: one successor plan over a (B, n, n) stack      */
/* ------------------------------------------------------------------ */

static PyObject *
py_run_plan(PyObject *self, PyObject *args)
{
    PyObject *work_obj, *alive_obj;
    PyObject *guard_obj, *zops_obj, *free_obj, *inv_obj;
    PyObject *ceil_obj, *lu_obj;
    int n, has_error, delay;
    Py_ssize_t batch;
    if (!PyArg_ParseTuple(args, "OOniOpOOOpOO", &work_obj, &alive_obj,
                          &batch, &n, &guard_obj, &has_error, &zops_obj,
                          &free_obj, &inv_obj, &delay, &ceil_obj, &lu_obj)
        || check_n(n) < 0)
        return NULL;

    cop_t guards[MAX_OPS], invs[MAX_OPS];
    zop_t zops[MAX_OPS];
    int free_idx[MAX_CLOCKS];
    int n_guards, n_invs, n_zops, n_free;
    if (parse_cops(guard_obj, n, guards, &n_guards, "guard") < 0
        || parse_zops(zops_obj, n, zops, &n_zops) < 0
        || parse_clocks(free_obj, n, free_idx, &n_free) < 0
        || parse_cops(inv_obj, n, invs, &n_invs, "invariant") < 0)
        return NULL;

    int use_lu = lu_obj != Py_None;
    int64_t mx[MAX_CLOCKS], low[MAX_CLOCKS], up[MAX_CLOCKS];
    if (use_lu) {
        PyObject *low_obj = PySequence_GetItem(lu_obj, 0);
        PyObject *up_obj = low_obj ? PySequence_GetItem(lu_obj, 1) : NULL;
        int bad = low_obj == NULL || up_obj == NULL
                  || parse_vec(low_obj, n, low, "lower bound") < 0
                  || parse_vec(up_obj, n, up, "upper bound") < 0;
        Py_XDECREF(low_obj);
        Py_XDECREF(up_obj);
        if (bad)
            return NULL;
    }
    else {
        if (parse_vec(ceil_obj, n, mx, "max constant") < 0)
            return NULL;
    }

    Py_buffer work_view, alive_view;
    int64_t *work;
    if (mat_acquire(work_obj, &work_view, RW_FLAGS, batch * n * n,
                    &work) < 0)
        return NULL;
    if (PyObject_GetBuffer(alive_obj, &alive_view, RW_FLAGS) < 0) {
        PyBuffer_Release(&work_view);
        return NULL;
    }
    if (alive_view.itemsize != 1 || alive_view.len != batch) {
        PyBuffer_Release(&alive_view);
        PyBuffer_Release(&work_view);
        PyErr_SetString(PyExc_ValueError,
                        "alive mask must be one byte per batch element");
        return NULL;
    }
    unsigned char *alive = (unsigned char *)alive_view.buf;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t bdx = 0; bdx < batch; bdx++) {
        if (!alive[bdx])
            continue;
        int64_t *m = work + (size_t)bdx * n * n;
        int dead = 0;
        for (int g = 0; g < n_guards; g++) {
            if (k_constrain(m, n, guards[g].i, guards[g].j,
                            guards[g].bound)) {
                dead = 1;
                break;
            }
        }
        if (dead) {
            alive[bdx] = 0;
            continue;
        }
        if (has_error)
            continue; /* error plans stop at the guard */
        for (int z = 0; z < n_zops; z++) {
            if (zops[z].kind == 0)
                k_reset(m, n, zops[z].x, zops[z].yv);
            else
                k_assign(m, n, zops[z].x, (int)zops[z].yv);
        }
        if (n_free)
            k_free_many(m, n, free_idx, n_free);
        for (int v = 0; v < n_invs; v++) {
            if (k_constrain(m, n, invs[v].i, invs[v].j, invs[v].bound)) {
                dead = 1;
                break;
            }
        }
        if (dead) {
            alive[bdx] = 0;
            continue;
        }
        if (delay) {
            k_up(m, n);
            for (int v = 0; v < n_invs; v++) {
                if (k_constrain(m, n, invs[v].i, invs[v].j,
                                invs[v].bound)) {
                    dead = 1;
                    break;
                }
            }
            if (dead) {
                alive[bdx] = 0;
                continue;
            }
        }
        int changed = use_lu ? k_extra_lu(m, n, low, up)
                             : k_extra_max(m, n, mx);
        if (changed)
            k_close(m, n);
    }
    Py_END_ALLOW_THREADS

    PyBuffer_Release(&alive_view);
    PyBuffer_Release(&work_view);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */

static PyMethodDef kernel_methods[] = {
    {"close", py_close, METH_VARARGS,
     "close(m, n): Floyd-Warshall all-pairs tightening in place."},
    {"close_clock", py_close_clock, METH_VARARGS,
     "close_clock(m, n, x): O(n^2) re-closure via clock x."},
    {"is_empty", py_is_empty, METH_VARARGS,
     "is_empty(m, n) -> bool: negative-diagonal scan."},
    {"constrain", py_constrain, METH_VARARGS,
     "constrain(m, n, i, j, bound) -> int: 1 when the constraint "
     "contradicts the zone (diagonal witness written)."},
    {"constrain_all", py_constrain_all, METH_VARARGS,
     "constrain_all(m, n, ops) -> int: apply (i, j, bound) triples "
     "with early exit; 1 when still non-empty."},
    {"up", py_up, METH_VARARGS,
     "up(m, n): delay operator (drop upper bounds)."},
    {"reset", py_reset, METH_VARARGS,
     "reset(m, n, x, value): clock assignment x := value."},
    {"assign", py_assign, METH_VARARGS,
     "assign(m, n, x, y): clock copy x := y."},
    {"free_clock", py_free_clock, METH_VARARGS,
     "free_clock(m, n, x): drop all constraints on clock x."},
    {"free_many", py_free_many, METH_VARARGS,
     "free_many(m, n, clocks): sequential frees of several clocks."},
    {"includes", py_includes, METH_VARARGS,
     "includes(a, b, n) -> bool: zone inclusion b within a."},
    {"extrapolate_max", py_extrapolate_max, METH_VARARGS,
     "extrapolate_max(m, n, ceilings) -> int: Extra_M widening + "
     "closure when changed; returns changed."},
    {"extrapolate_lu", py_extrapolate_lu, METH_VARARGS,
     "extrapolate_lu(m, n, lower, upper) -> int: Extra+_LU widening "
     "+ closure when changed; returns changed."},
    {"run_plan", py_run_plan, METH_VARARGS,
     "run_plan(work, alive, B, n, guard_ops, has_error, zone_ops, "
     "free_clocks, invariant_ops, delay, ceilings, lu): full batched "
     "successor pipeline with per-element early exit."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.zones._dbmkernel",
    "Native DBM kernels (see repro/zones/dbm_native.py).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__dbmkernel(void)
{
    PyObject *mod = PyModule_Create(&kernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "MAX_CLOCKS", MAX_CLOCKS) < 0
        || PyModule_AddIntConstant(mod, "KERNEL_VERSION", 1) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
