"""Native (C extension) DBM backend: compiled kernels, numpy storage.

:class:`NativeDBM` subclasses :class:`~repro.zones.dbm_numpy.NumpyDBM`
and keeps the matrix as the same C-contiguous ``(n, n)`` int64 array —
so the passed-list buckets (:mod:`repro.zones.store`), the intern
table, ``np.stack`` in the sharded explorer and the batched commit
phase all work unchanged — but every hot kernel (closure, constrain,
resets, inclusion, extrapolation) is one call into the compiled
``repro.zones._dbmkernel`` module instead of a cascade of numpy ufunc
dispatches.  On the small matrices this framework produces (< 16
clocks) per-call dispatch overhead dominates arithmetic, which is why
the compiled scalar loops beat the vectorized kernels at every size.

Bit-identity: the C kernels replicate the reference backend's loops
statement for statement (see ``_dbmkernel.c``); the differential
lockstep tests in ``tests/test_zones_backends.py`` drive reference,
numpy and native through identical random op sequences and require
equal snapshots, emptiness verdicts and hashes at every step.

This module raises :class:`ImportError` when either numpy or the
compiled extension is missing; :mod:`repro.zones.backend` catches that
and simply leaves ``native`` out of :func:`available_backends`, so a
checkout without a compiler (or a wheel without the prebuilt artifact)
falls back to the pure-python/numpy backends gracefully.

Build the extension in place with::

    python setup.py build_ext --inplace

or install the ``[native]`` extra (the build is marked optional, so a
missing toolchain degrades to a warning, never an install failure).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.zones import _dbmkernel as _k  # ImportError when unbuilt
from repro.zones.dbm_numpy import NumpyDBM

__all__ = ["NativeDBM", "NativeBatchExpander"]

#: Largest matrix the compiled kernels accept (stack-scratch bound).
MAX_CLOCKS: int = _k.MAX_CLOCKS


class NativeDBM(NumpyDBM):
    """Difference bound matrix with compiled kernels.

    Semantics are identical to :class:`repro.zones.dbm.DBM`, including
    the sticky emptiness flag and the cached ``frozen()`` snapshot; the
    ``_empty``/``_frozen`` bookkeeping stays in Python while the matrix
    mutations happen in C through the buffer protocol.
    """

    __slots__ = ()

    def __init__(self, size: int, _m=None):
        if size > MAX_CLOCKS:
            raise ValueError(
                f"the native zone backend supports up to {MAX_CLOCKS} "
                f"clocks, got {size}")
        super().__init__(size, _m)

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def close(self) -> "NativeDBM":
        self._frozen = None
        _k.close(self._m, self.size)
        self._empty = None
        return self

    def close_clock(self, x: int) -> "NativeDBM":
        self._frozen = None
        _k.close_clock(self._m, self.size, x)
        self._empty = None
        return self

    def is_empty(self) -> bool:
        empty = self._empty
        if empty is None:
            empty = self._empty = _k.is_empty(self._m, self.size)
        return empty

    # ------------------------------------------------------------------
    # Zone operations
    # ------------------------------------------------------------------
    def constrain(self, i: int, j: int, bound: int) -> "NativeDBM":
        self._frozen = None
        if _k.constrain(self._m, self.size, i, j, bound):
            self._empty = True
        return self

    def constrain_all(self, ops) -> bool:
        ops = ops if type(ops) is tuple else tuple(ops)
        if self.is_empty():
            # Mirror the base-class loop exactly: on an already-empty
            # zone the first constraint still lands on the matrix
            # before the emptiness check stops the sequence.
            if ops:
                i, j, bound = ops[0]
                self.constrain(i, j, bound)
            return False
        self._frozen = None
        if _k.constrain_all(self._m, self.size, ops):
            return True
        self._empty = True
        return False

    def up(self) -> "NativeDBM":
        self._frozen = None
        _k.up(self._m, self.size)
        return self

    def reset(self, x: int, value: int = 0) -> "NativeDBM":
        self._frozen = None
        _k.reset(self._m, self.size, x, value)
        return self

    def assign_clock(self, x: int, y: int) -> "NativeDBM":
        if x == y:
            return self
        self._frozen = None
        _k.assign(self._m, self.size, x, y)
        return self

    def free(self, x: int) -> "NativeDBM":
        self._frozen = None
        _k.free_clock(self._m, self.size, x)
        return self

    def free_many(self, clocks) -> "NativeDBM":
        if not clocks:
            return self
        self._frozen = None
        _k.free_many(self._m, self.size,
                     clocks if type(clocks) is tuple else tuple(clocks))
        return self

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def includes(self, other) -> bool:
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        if isinstance(other, NumpyDBM):
            return _k.includes(self._m, other._m, self.size)
        return bool((self._m >= self._peer_matrix(other)).all())

    # ------------------------------------------------------------------
    # Abstraction
    # ------------------------------------------------------------------
    def extrapolate_max(self, max_consts: Sequence[int]) -> "NativeDBM":
        if len(max_consts) != self.size:
            raise ValueError("need one max constant per clock")
        if _k.extrapolate_max(self._m, self.size, max_consts):
            # The C call re-closed the widened matrix; widening cannot
            # change emptiness, so the cached verdict stands.
            self._frozen = None
        return self

    def extrapolate_lu(self, lower: Sequence[int],
                       upper: Sequence[int]) -> "NativeDBM":
        if len(lower) != self.size or len(upper) != self.size:
            raise ValueError("need one lower and upper bound per clock")
        if _k.extrapolate_lu(self._m, self.size, lower, upper):
            self._frozen = None
        return self


class NativeBatchExpander:
    """Apply one successor plan to a zone stack in a single C call.

    Drop-in replacement for :class:`repro.zones.batch.BatchExpander`:
    same ``run_plan(src_stack, plan) -> (work, alive)`` contract, same
    bit-identity guarantees for surviving elements, same
    garbage-allowed contract for dead ones.  Instead of one broadcast
    numpy kernel per plan *op*, the whole pipeline (guards → resets →
    frees → invariants → delay → extrapolation) runs per element inside
    ``_dbmkernel.run_plan`` with early exit on emptiness, and the GIL
    is released across the batch loop so sharded worker threads scale.
    """

    __slots__ = ("n", "max_consts", "_zone_ops_cache")

    def __init__(self, n_clocks: int, max_consts):
        self.n = n_clocks
        self.max_consts = tuple(max_consts)
        # plan.zone_ops tuples are ("reset", x, value) / ("copy", x, y);
        # the C side wants integer kinds.  Memoized per distinct tuple
        # (plans are memoized per edge, so this stays tiny).
        self._zone_ops_cache: dict[tuple, tuple] = {}

    def _translate_zone_ops(self, zone_ops: tuple) -> tuple:
        out = self._zone_ops_cache.get(zone_ops)
        if out is None:
            out = tuple(
                (0, op[1], op[2]) if op[0] == "reset"
                else (1, op[1], op[2])
                for op in zone_ops)
            self._zone_ops_cache[zone_ops] = out
        return out

    def run_plan(self, src_stack: np.ndarray, plan):
        work = np.ascontiguousarray(src_stack)
        if work is src_stack:
            work = src_stack.copy()
        batch = work.shape[0]
        alive = np.ones(batch, dtype=bool)
        _k.run_plan(work, alive, batch, self.n, plan.guard_ops,
                    plan.error is not None,
                    self._translate_zone_ops(plan.zone_ops),
                    plan.free_clocks, plan.invariant_ops,
                    bool(plan.delay), self.max_consts, plan.lu)
        if plan.error is not None:
            return None, alive
        return work, alive
