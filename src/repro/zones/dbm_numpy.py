"""Vectorized DBM backend on numpy int64 matrices.

Drop-in replacement for the list-based reference backend in
:mod:`repro.zones.dbm`: same operation set, same encoded-bound algebra
(:mod:`repro.zones.bounds`), bit-identical matrices — the differential
tests in ``tests/test_zones_backends.py`` drive random operation
sequences through both backends and require equal snapshots, emptiness
verdicts and hashes at every step.

The payoff is in the O(n²) kernel steps (incremental closure after
``constrain``, ``reset``/``free``/``assign``, Extra_M) and in the
explorer's passed-list inclusion sweeps
(:class:`repro.zones.store.NumpyPassedBucket`), which become single
vectorized comparisons instead of per-element Python loops.

Encoding notes: bounds are ``(value << 1) | weak`` exactly as in
:mod:`repro.zones.bounds`.  ``INF`` is ``1 << 62``, so int64 holds any
finite bound the framework produces, but ``INF`` must never flow into
a vectorized shift/add — every kernel masks infinite entries first and
re-inserts ``INF`` afterwards (the scalar helpers in ``bounds`` would
have short-circuited instead).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.zones.bounds import INF, LE_ZERO, bound_add, encode
from repro.zones.common import ZoneMatrix

__all__ = ["NumpyDBM"]

_off_diagonal_cache: dict[int, np.ndarray] = {}


def _off_diagonal(n: int) -> np.ndarray:
    mask = _off_diagonal_cache.get(n)
    if mask is None:
        mask = ~np.eye(n, dtype=bool)
        mask.setflags(write=False)
        _off_diagonal_cache[n] = mask
    return mask


class _Workspace:
    """Reusable per-size scratch buffers for the vectorized kernels.

    Each *thread* shares one workspace per matrix size, which keeps
    every hot operation allocation-free.  Buffers are consumed within
    one kernel call — nothing keeps a reference past the call that
    filled it.  The cache is thread-local because the portfolio
    scheduler (:mod:`repro.mc.portfolio`) drives several explorations
    from concurrent coordinator threads; a process-global workspace
    would let two scalar kernels scribble over each other's scratch.
    """

    __slots__ = ("via", "vals", "mask", "mask2", "mask3", "weak", "vec",
                 "vecmask")

    def __init__(self, n: int):
        self.via = np.empty((n, n), dtype=np.int64)
        self.vals = np.empty((n, n), dtype=np.int64)
        self.mask = np.empty((n, n), dtype=bool)
        self.mask2 = np.empty((n, n), dtype=bool)
        self.mask3 = np.empty((n, n), dtype=bool)
        self.weak = np.empty((n, n), dtype=np.int64)
        self.vec = np.empty(n, dtype=np.int64)
        self.vecmask = np.empty(n, dtype=bool)


_workspace_local = threading.local()


def _workspace(n: int) -> _Workspace:
    cache = getattr(_workspace_local, "by_size", None)
    if cache is None:
        cache = _workspace_local.by_size = {}
    ws = cache.get(n)
    if ws is None:
        ws = cache[n] = _Workspace(n)
    return ws


_free_index_cache: dict[tuple[int, ...], tuple[np.ndarray, tuple]] = {}


def _free_indices(clocks: tuple[int, ...]) -> tuple[np.ndarray, tuple]:
    """Cached fancy-index arrays for a static batch of freed clocks."""
    cached = _free_index_cache.get(clocks)
    if cached is None:
        idx = np.array(clocks, dtype=np.intp)
        cached = _free_index_cache[clocks] = (idx, np.ix_(idx, idx))
    return cached


_ceiling_cache: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}


def _ceiling_arrays(max_consts) -> tuple[np.ndarray, np.ndarray]:
    """Per-clock ceilings and the matching strict lower-bound encodings."""
    key = tuple(max_consts)
    cached = _ceiling_cache.get(key)
    if cached is None:
        ceilings = np.array(key, dtype=np.int64)
        ceilings.setflags(write=False)
        strict_floor = np.broadcast_to(
            (-ceilings) << 1, (len(key), len(key)))
        cached = _ceiling_cache[key] = (ceilings, strict_floor)
    return cached


_lu_cache: dict[tuple[tuple[int, ...], tuple[int, ...]],
                tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

#: Distinct (lower, upper) pairs are per *location vector* per model,
#: so a long-lived process sweeping many models would grow the cache
#: without bound; past the cap it restarts a generation (handed-out
#: arrays stay valid — nothing relies on cache identity).
_LU_CACHE_MAX = 4096


def _lu_arrays(lower: tuple[int, ...], upper: tuple[int, ...]) \
        -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached L/U vectors + strict row-0 replacements for Extra⁺_LU."""
    key = (lower, upper)
    cached = _lu_cache.get(key)
    if cached is None:
        if len(_lu_cache) >= _LU_CACHE_MAX:
            _lu_cache.clear()
        low = np.array(lower, dtype=np.int64)
        up = np.array(upper, dtype=np.int64)
        strict = (-up) << 1  # encode(-upper[j], strict)
        for arr in (low, up, strict):
            arr.setflags(write=False)
        cached = _lu_cache[key] = (low, up, strict)
    return cached


def _vec_add_scalar(vec: np.ndarray, bound: int) -> np.ndarray:
    """Vectorized ``bound_add(vec, bound)`` for a finite scalar bound."""
    finite = vec != INF
    values = np.where(finite, vec >> 1, 0) + (bound >> 1)
    out = (values << 1) | (vec & bound & 1)
    return np.where(finite, out, INF)


def _outer_add_into(col: np.ndarray, row: np.ndarray,
                    ws: _Workspace) -> np.ndarray:
    """``bound_add`` outer sum ``out[a][b] = col[a] ⊕ row[b]`` into ``ws.via``.

    Infinite operands are masked before the value shift so the packed
    encoding never overflows int64.
    """
    np.bitwise_and((col != INF)[:, None], (row != INF)[None, :],
                   out=ws.mask)
    np.add((col >> 1)[:, None], (row >> 1)[None, :], out=ws.vals)
    np.multiply(ws.vals, ws.mask, out=ws.vals)  # zero masked pre-shift
    np.bitwise_and((col & 1)[:, None], (row & 1)[None, :], out=ws.weak)
    np.left_shift(ws.vals, 1, out=ws.vals)
    np.bitwise_or(ws.vals, ws.weak, out=ws.via)
    np.logical_not(ws.mask, out=ws.mask2)
    np.copyto(ws.via, INF, where=ws.mask2)
    return ws.via


class NumpyDBM(ZoneMatrix):
    """Difference bound matrix stored as an ``(n, n)`` int64 array.

    Semantics are identical to :class:`repro.zones.dbm.DBM`, including
    the sticky emptiness flag and the cached ``frozen()`` snapshot; see
    that class for the operation documentation.
    """

    __slots__ = ("size", "_m", "_empty", "_frozen")

    def __init__(self, size: int, _m=None):
        if size < 1:
            raise ValueError("a DBM needs at least the reference clock")
        self.size = size
        if _m is None:
            m = np.full((size, size), INF, dtype=np.int64)
            m[0, :] = LE_ZERO
            np.fill_diagonal(m, LE_ZERO)
            self._empty = False
        else:
            m = np.array(_m, dtype=np.int64).reshape(size, size)
            self._empty = None
        self._m = m
        self._frozen = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universal(cls, size: int) -> "NumpyDBM":
        """All clock valuations with non-negative clocks."""
        return cls(size)

    @classmethod
    def zero(cls, size: int) -> "NumpyDBM":
        """The singleton zone where every clock equals 0."""
        zone = cls(size)
        zone._m.fill(LE_ZERO)
        return zone

    def copy(self) -> "NumpyDBM":
        # type(self), not NumpyDBM: the native backend subclasses this
        # class and its copies must stay native.
        clone = type(self).__new__(type(self))
        clone.size = self.size
        clone._m = self._m.copy()
        clone._empty = self._empty
        clone._frozen = self._frozen
        return clone

    def copy_from(self, other: "NumpyDBM") -> "NumpyDBM":
        """Overwrite this zone in place from a same-size zone."""
        np.copyto(self._m, other._m)
        self._empty = other._empty
        self._frozen = other._frozen
        return self

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        """Encoded bound of ``x_i - x_j`` as a Python int."""
        return int(self._m[i, j])

    def set_raw(self, i: int, j: int, bound: int) -> None:
        """Set an entry without re-closing (see the reference backend)."""
        self._m[i, j] = bound
        self._empty = None
        self._frozen = None

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def close(self) -> "NumpyDBM":
        """Floyd–Warshall all-pairs tightening.  Returns self."""
        m = self._m
        self._frozen = None
        ws = _workspace(self.size)
        for k in range(self.size):
            np.minimum(m, _outer_add_into(m[:, k], m[k, :], ws), out=m)
        self._empty = None
        return self

    def close_clock(self, x: int) -> "NumpyDBM":
        """Re-close after only row/column ``x`` was tightened (O(n²))."""
        m = self._m
        self._frozen = None
        np.minimum(m, _outer_add_into(m[:, x], m[x, :],
                                      _workspace(self.size)), out=m)
        self._empty = None
        return self

    def is_empty(self) -> bool:
        """True when the zone contains no valuation."""
        empty = self._empty
        if empty is None:
            empty = self._empty = bool(
                (np.diagonal(self._m) < LE_ZERO).any())
        return empty

    # ------------------------------------------------------------------
    # Zone operations
    # ------------------------------------------------------------------
    def constrain(self, i: int, j: int, bound: int) -> "NumpyDBM":
        """Intersect with ``x_i - x_j ≺ bound``.  Returns self."""
        m = self._m
        self._frozen = None
        cross = bound_add(int(m[j, i]), bound)
        if cross < LE_ZERO:
            m[i, i] = cross
            self._empty = True
            return self
        if bound < m[i, j]:
            m[i, j] = bound
            # Re-close via the two touched clocks: the tightest new
            # path from a to b uses the fresh (i, j) edge exactly once,
            # so min(m, col_i ⊕ bound ⊕ row_j) restores canonical form.
            ws = _workspace(self.size)
            col = m[:, i]
            np.not_equal(col, INF, out=ws.vecmask)
            np.multiply(col >> 1, ws.vecmask, out=ws.vec)
            ws.vec += bound >> 1
            np.left_shift(ws.vec, 1, out=ws.vec)
            np.bitwise_or(ws.vec, col & bound & 1, out=ws.vec)
            np.logical_not(ws.vecmask, out=ws.vecmask)
            np.copyto(ws.vec, INF, where=ws.vecmask)
            np.minimum(m, _outer_add_into(ws.vec, m[j, :], ws), out=m)
        return self

    def up(self) -> "NumpyDBM":
        """Delay operator: remove all upper bounds (future closure)."""
        self._frozen = None
        self._m[1:, 0] = INF
        return self

    def reset(self, x: int, value: int = 0) -> "NumpyDBM":
        """Assignment ``x := value`` (non-negative integer)."""
        m = self._m
        self._frozen = None
        row0 = m[0, :].copy()
        col0 = m[:, 0].copy()
        m[x, :] = _vec_add_scalar(row0, encode(value, True))
        m[:, x] = _vec_add_scalar(col0, encode(-value, True))
        m[x, x] = LE_ZERO
        return self

    def assign_clock(self, x: int, y: int) -> "NumpyDBM":
        """Clock copy ``x := y``."""
        if x == y:
            return self
        m = self._m
        self._frozen = None
        row_y = m[y, :].copy()
        col_y = m[:, y].copy()
        m[x, :] = row_y
        m[:, x] = col_y
        m[x, x] = LE_ZERO
        return self

    def free(self, x: int) -> "NumpyDBM":
        """Remove all constraints on clock ``x`` (unbounded value)."""
        m = self._m
        self._frozen = None
        col0 = m[:, 0].copy()
        diagonal = int(m[x, x])
        m[x, :] = INF
        m[:, x] = col0
        m[x, x] = diagonal
        return self

    def free_many(self, clocks) -> "NumpyDBM":
        """Free several clocks at once (≡ sequential :meth:`free` calls).

        One fused kernel for the explorer's per-successor batch of
        active-clock-reduction and observer frees: freed rows go to
        ``INF``, freed columns take the pre-free reference column, all
        pairs of freed clocks decouple to ``INF`` and diagonal entries
        are preserved — exactly the fixpoint of applying :meth:`free`
        clock by clock.
        """
        if not clocks:
            return self
        if len(clocks) == 1:
            return self.free(clocks[0])
        m = self._m
        self._frozen = None
        idx, ixgrid = _free_indices(tuple(clocks))
        col0 = m[:, 0].copy()
        diagonal = m[idx, idx]  # fancy indexing copies
        m[idx, :] = INF
        m[:, idx] = col0[:, None]
        m[ixgrid] = INF
        m[idx, idx] = diagonal
        return self

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def _peer_matrix(self, other: "ZoneMatrix") -> np.ndarray:
        if isinstance(other, NumpyDBM):  # includes the native subclass
            return other._m
        return np.array(other.frozen(),
                        dtype=np.int64).reshape(self.size, self.size)

    def includes(self, other: "ZoneMatrix") -> bool:
        """Zone inclusion ``other ⊆ self`` (both canonical)."""
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        return bool((self._m >= self._peer_matrix(other)).all())

    def intersects(self, other: "ZoneMatrix") -> bool:
        """True when the two zones share at least one valuation."""
        if self.size != other.size:
            raise ValueError("DBM size mismatch")
        merged = type(self).__new__(type(self))
        merged.size = self.size
        merged._m = np.minimum(self._m, self._peer_matrix(other))
        merged._empty = None
        merged._frozen = None
        return not merged.close().is_empty()

    # ------------------------------------------------------------------
    # Abstraction
    # ------------------------------------------------------------------
    def extrapolate_max(self, max_consts: Sequence[int]) -> "NumpyDBM":
        """Extra_M abstraction on per-clock maximum constants."""
        n = self.size
        if len(max_consts) != n:
            raise ValueError("need one max constant per clock")
        m = self._m
        ws = _workspace(n)
        ceilings, strict_floor = _ceiling_arrays(max_consts)
        # candidates: finite off-diagonal entries.
        np.not_equal(m, INF, out=ws.mask)
        np.logical_and(ws.mask, _off_diagonal(n), out=ws.mask)
        np.right_shift(m, 1, out=ws.vals)
        # widen_up: value above the row clock's ceiling → INF.
        np.greater(ws.vals, ceilings[:, None], out=ws.mask2)
        np.logical_and(ws.mask2, ws.mask, out=ws.mask2)
        # widen_low: value below the column clock's -ceiling (and not
        # widened up) → strict floor encode(-max_consts[j], False).
        np.less(ws.vals, -ceilings[None, :], out=ws.mask3)
        np.logical_and(ws.mask3, ws.mask, out=ws.mask3)
        np.logical_not(ws.mask2, out=ws.mask)
        np.logical_and(ws.mask3, ws.mask, out=ws.mask3)
        changed = False
        if ws.mask2.any():
            np.copyto(m, INF, where=ws.mask2)
            changed = True
        if ws.mask3.any():
            np.copyto(m, strict_floor, where=ws.mask3)
            changed = True
        if changed:
            was_empty = self._empty
            self._frozen = None
            self.close()
            # Widening cannot change emptiness: keep the known verdict
            # instead of forcing a diagonal rescan.
            if was_empty is not None:
                self._empty = was_empty
        return self

    def extrapolate_lu(self, lower: Sequence[int],
                       upper: Sequence[int]) -> "NumpyDBM":
        """Extra⁺_LU abstraction (see the reference backend)."""
        n = self.size
        if len(lower) != n or len(upper) != n:
            raise ValueError("need one lower and upper bound per clock")
        m = self._m
        ws = _workspace(n)
        low_arr, up_arr, strict_up = _lu_arrays(tuple(lower),
                                                tuple(upper))
        # All rule tests read the pre-pass matrix; ``vals`` snapshots
        # the values (INF lanes shift to a huge positive that can only
        # satisfy the "exceeds L(x_i)" test, which the finite mask
        # filters out anyway).
        np.right_shift(m, 1, out=ws.vals)
        np.not_equal(m, INF, out=ws.mask)
        np.logical_and(ws.mask, _off_diagonal(n), out=ws.mask)
        row0_vals = ws.vals[0].copy()
        row0_finite = m[0] != INF
        # Rows whose lower bound exceeds L(x_i) widen entirely; the
        # reference row never does (lower[0] == 0, D_00 == (0, ≤)).
        row_dead = row0_finite & (-row0_vals > low_arr)
        col_dead = row0_finite & (-row0_vals > up_arr)
        np.greater(ws.vals, low_arr[:, None], out=ws.mask2)
        np.logical_or(ws.mask2, row_dead[:, None], out=ws.mask2)
        np.logical_or(ws.mask2, col_dead[None, :], out=ws.mask2)
        np.logical_and(ws.mask2, ws.mask, out=ws.mask2)
        ws.mask2[0, :] = False  # row 0 follows the replacement rule
        # Row-0 replacement: lower bounds beyond U(x_j) flatten to the
        # strict bound (-U(x_j), <).
        replace0 = col_dead & ws.mask[0]
        changed = False
        if ws.mask2.any():
            np.copyto(m, INF, where=ws.mask2)
            changed = True
        if replace0.any():
            np.copyto(m[0], strict_up, where=replace0)
            changed = True
        if changed:
            was_empty = self._empty
            self._frozen = None
            self.close()
            # Widening cannot change emptiness (same as Extra_M).
            if was_empty is not None:
                self._empty = was_empty
        return self

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def frozen(self) -> tuple[int, ...]:
        """Immutable snapshot usable as a dict key (cached)."""
        snapshot = self._frozen
        if snapshot is None:
            snapshot = self._frozen = tuple(self._m.ravel().tolist())
        return snapshot
