"""Shared zone-matrix interface and backend-independent helpers.

Every zone backend (the portable list-based :class:`~repro.zones.dbm.DBM`
and the vectorized :class:`~repro.zones.dbm_numpy.NumpyDBM`) subclasses
:class:`ZoneMatrix`.  The subclasses implement the numeric kernel —
closure, constraining, resets, extrapolation — natively for their
storage layout; everything that is either debug-oriented or naturally
expressed through ``get``/``constrain``/``copy`` lives here so the two
kernels cannot drift apart on presentation details.

Cross-backend equality and hashing go through :meth:`ZoneMatrix.frozen`,
which every backend must return as a plain tuple of Python ints in
row-major order.  Two zones over the same clocks are therefore equal,
hash-equal and interchangeable as dict keys regardless of which backend
produced them.

Backend contract (beyond the methods defined here):

``size``            number of clocks including the reference clock 0
``universal(n)``    constructor: non-negative clocks, no upper bounds
``zero(n)``         constructor: the all-zero singleton
``copy()``          independent duplicate
``copy_from(z)``    overwrite in place from a same-size zone (no alloc)
``get/set_raw``     raw encoded-bound access
``close/close_clock``  canonicalization
``is_empty()``      emptiness — backends keep a flag updated at
                    tightening time instead of rescanning the diagonal
``constrain``       intersect with one ``x_i - x_j ≺ b`` (incremental
                    re-close, emptiness flagged)
``constrain_all``   fused constraint sequence with early exit
``up/reset/assign_clock/free``  the standard zone updates
``includes/intersects``         zone comparisons
``extrapolate_max`` Extra_M abstraction
``frozen()``        cached immutable snapshot (tuple of Python ints)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.zones.bounds import INF, bound_as_text, decode, encode

__all__ = ["ZoneMatrix"]


class ZoneMatrix:
    """Abstract base for difference-bound-matrix backends."""

    __slots__ = ()

    size: int

    # -- methods the backends must provide ------------------------------
    def get(self, i: int, j: int) -> int:
        raise NotImplementedError

    def copy(self) -> "ZoneMatrix":
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    def constrain(self, i: int, j: int, bound: int) -> "ZoneMatrix":
        raise NotImplementedError

    def frozen(self) -> tuple[int, ...]:
        raise NotImplementedError

    @classmethod
    def from_frozen(cls, size: int,
                    snapshot: Iterable[int]) -> "ZoneMatrix":
        return cls(size, list(snapshot))

    # -- fused helpers ---------------------------------------------------
    def constrain_all(self, ops: Iterable[tuple[int, int, int]]) -> bool:
        """Apply a sequence of ``(i, j, bound)`` constraints in place.

        Part of the allocation-free successor pipeline: stops as soon
        as the zone is detected empty and returns ``False`` then,
        ``True`` when the zone is still non-empty after all
        constraints.  (An already-empty zone returns ``False`` even
        for an empty sequence.)
        """
        for i, j, bound in ops:
            self.constrain(i, j, bound)
            if self.is_empty():
                return False
        return not self.is_empty()

    def free_many(self, clocks: Iterable[int]) -> "ZoneMatrix":
        """Free several clocks (≡ sequential ``free`` calls).

        Backends may fuse this into one kernel; the result must match
        freeing clock by clock bit for bit.
        """
        for x in clocks:
            self.free(x)
        return self

    # -- shared concrete queries ----------------------------------------
    def upper_bound(self, x: int) -> int:
        """Encoded upper bound of clock ``x`` (``D[x][0]``)."""
        return self.get(x, 0)

    def lower_bound(self, x: int) -> int:
        """Largest lower bound of ``x`` as a non-negative value.

        Decodes ``D[0][x]`` (which encodes ``-lower``); returns the
        value only — strictness is available via :meth:`get`.
        """
        from repro.zones.bounds import bound_value
        return -bound_value(self.get(0, x))

    def contains_point(self, values: Sequence[int]) -> bool:
        """Membership test for a concrete valuation.

        ``values[i]`` is the value of clock ``i`` for ``i ≥ 1``;
        ``values[0]`` must be 0 (the reference clock).
        """
        if len(values) != self.size:
            raise ValueError("valuation length must equal DBM size")
        n = self.size
        for i in range(n):
            for j in range(n):
                b = self.get(i, j)
                if b == INF:
                    continue
                bound, weak = decode(b)
                diff = values[i] - values[j]
                if diff > bound or (diff == bound and not weak):
                    return False
        return True

    def sample_point(self, limit: int = 1 << 20) -> list[int] | None:
        """A concrete integer valuation inside the zone, if one exists.

        Uses the canonical form: picking each clock at its lower bound
        (rounded up past strict bounds) and re-tightening is sufficient
        for the integer zones produced by integer-constant automata.
        Returns ``None`` for empty zones.
        """
        if self.is_empty():
            return None
        work = self.copy()
        values = [0] * self.size
        for x in range(1, self.size):
            low = work.get(0, x)
            value, weak = decode(low)
            candidate = -value if weak else -value + 1
            candidate = max(candidate, 0)
            if candidate > limit:
                return None
            work.constrain(x, 0, encode(candidate, True))
            work.constrain(0, x, encode(-candidate, True))
            if work.is_empty():
                return None
            values[x] = candidate
        return values

    # -- equality / hashing across backends -----------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ZoneMatrix)
            and self.size == other.size
            and self.frozen() == other.frozen()
        )

    def __hash__(self) -> int:
        return hash((self.size, self.frozen()))

    # -- debug rendering -------------------------------------------------
    def as_text(self, clock_names: Sequence[str] | None = None) -> str:
        """Readable constraint list, e.g. ``x<=5 ∧ x-y<2``."""
        names = list(clock_names) if clock_names else [
            "0" if i == 0 else f"x{i}" for i in range(self.size)
        ]
        parts: list[str] = []
        n = self.size
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                b = self.get(i, j)
                if b == INF:
                    continue
                if i == 0:
                    value, weak = decode(b)
                    if value == 0 and weak:
                        continue  # trivial xj >= 0
                    parts.append(f"{names[j]}>{'=' if weak else ''}{-value}")
                elif j == 0:
                    parts.append(f"{names[i]}{bound_as_text(b)}")
                else:
                    parts.append(f"{names[i]}-{names[j]}{bound_as_text(b)}")
        return " ∧ ".join(parts) if parts else "true"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.as_text()})"
