"""Global zone intern table: one object per distinct canonical zone.

Identical zones recur constantly across discrete configurations — the
case-study PSM stores ~12k symbolic states but far fewer distinct
zones, because the platform automata cycle through the same timing
envelopes in many discrete contexts.  The intern table maps a zone's
``frozen()`` snapshot to a single shared instance per backend, so

* storage is deduplicated (every :class:`SymbolicState` of an equal
  zone points at the same matrix),
* equality between interned zones degenerates to a pointer check
  (``a is b``), which the sharded explorer exploits when merging
  per-shard passed lists and reconstructing traces, and
* the ``frozen()`` tuple itself is shared, so trace node ids and
  cross-process snapshots hash the same object instead of re-tupling.

Interned zones are *immutable by contract*: callers must never mutate
a zone obtained from the table (the explorers guarantee this — stored
zones are only read after insertion, and scratch matrices are never
interned).

The default table is process-global (:func:`global_intern_table`) so
batches of queries over the same model share storage across
explorations.  Memory stays bounded: ``max_zones`` (default 1M
entries) drops the cache and starts a fresh generation when exceeded;
pass a private table or call :meth:`ZoneInternTable.clear` for finer
control.

Thread-safety: each explorer interns only from its coordinating
thread (the ordered commit scan), but the portfolio scheduler
(:mod:`repro.mc.portfolio`) runs several coordinators concurrently
over one shared table.  CPython dict operations are individually
atomic, so the worst case under such races is two transient canonical
instances for one snapshot (and slightly under-counted hit/miss
statistics) — wasteful, never incorrect, since nothing relies on
pointer identity across callers.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ZoneInternTable", "global_intern_table"]


class ZoneInternTable:
    """Deduplicating map ``(backend, frozen snapshot) -> zone``.

    ``max_zones`` bounds the table: when a new entry would exceed it,
    the table drops every cached zone and starts a fresh generation
    (``resets`` counts these).  Zones already handed out stay valid —
    nothing relies on pointer identity *across* generations — so the
    cap only trades deduplication for bounded memory in long-lived
    processes that sweep many unrelated models.
    """

    __slots__ = ("_zones", "max_zones", "hits", "misses", "resets")

    #: Default generation cap (~1 GiB worst case at 11-clock zones).
    DEFAULT_MAX_ZONES = 1_000_000

    def __init__(self, max_zones: int | None = DEFAULT_MAX_ZONES):
        self._zones: dict[tuple, object] = {}
        self.max_zones = max_zones
        #: Lookups answered with an existing instance.
        self.hits = 0
        #: Lookups that stored a new canonical instance.
        self.misses = 0
        #: Generation restarts forced by ``max_zones``.
        self.resets = 0

    def __len__(self) -> int:
        return len(self._zones)

    def _make_room(self) -> None:
        if (self.max_zones is not None
                and len(self._zones) >= self.max_zones):
            self._zones.clear()
            self.resets += 1

    def intern(self, zone):
        """The canonical instance equal to ``zone`` (``zone`` if new).

        The returned zone is of the same backend class as ``zone`` and
        bit-identical to it; its ``frozen()`` snapshot is the shared
        tuple used as the table key.
        """
        snapshot = zone.frozen()
        key = (type(zone), snapshot)
        canonical = self._zones.get(key)
        if canonical is not None:
            self.hits += 1
            return canonical
        self._make_room()
        self._zones[key] = zone
        self.misses += 1
        return zone

    def intern_frozen(self, dbm_cls, size: int,
                      snapshot: tuple, *, empty: bool = False):
        """Canonical zone for a snapshot, building one only on a miss.

        The allocation-avoiding entry point for cross-process merges:
        worker processes ship ``frozen()`` tuples, and the merge only
        materializes a matrix for snapshots never seen before.
        """
        key = (dbm_cls, snapshot)
        canonical = self._zones.get(key)
        if canonical is not None:
            self.hits += 1
            return canonical
        zone = dbm_cls.from_frozen(size, snapshot)
        zone._empty = empty
        zone._frozen = snapshot
        self._make_room()
        self._zones[key] = zone
        self.misses += 1
        return zone

    def clear(self) -> None:
        """Drop every interned zone (counters are kept)."""
        self._zones.clear()

    def stats(self) -> dict[str, int]:
        return {"zones": len(self._zones), "hits": self.hits,
                "misses": self.misses, "resets": self.resets}

    # Mostly a debugging aid: which snapshots are interned right now.
    def snapshots(self) -> Iterable[tuple]:  # pragma: no cover
        return (key[1] for key in self._zones)


_GLOBAL = ZoneInternTable()


def global_intern_table() -> ZoneInternTable:
    """The process-wide default table used by the sharded explorer."""
    return _GLOBAL
