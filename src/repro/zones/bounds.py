"""Bound algebra for difference bound matrices.

A *bound* constrains a clock difference ``x - y ≺ n`` where ``≺`` is
either strict (``<``) or weak (``≤``).  Following the classic encoding
(Bengtsson & Yi, "Timed Automata: Semantics, Algorithms and Tools"),
a bound is packed into a single integer::

    encode(n, weak) = (n << 1) | (1 if weak else 0)

so that the natural integer order coincides with bound tightness:
``(n, <)`` is tighter than ``(n, ≤)`` which is tighter than
``(n + 1, <)``.  Infinity is a large sentinel that survives one
addition without overflow (Python integers are unbounded, so the
sentinel is purely conventional).

All DBM arithmetic in :mod:`repro.zones.dbm` is expressed in terms of
the tiny functions here, which makes the matrix code read like the
textbook algorithms.
"""

from __future__ import annotations

__all__ = [
    "INF",
    "LE_ZERO",
    "LT_ZERO",
    "encode",
    "decode",
    "bound_add",
    "bound_value",
    "bound_is_weak",
    "negate_weak",
    "bound_as_text",
]

#: Encoded "no bound" (``x - y < ∞``).  Any finite encoded bound is
#: strictly smaller.  ``INF + INF`` must not be used; ``bound_add``
#: short-circuits instead.
INF: int = 1 << 62

#: Encoded ``≤ 0`` — the diagonal entry of a canonical DBM.
LE_ZERO: int = 1
#: Encoded ``< 0`` — an unsatisfiable self-difference; marks emptiness.
LT_ZERO: int = 0


def encode(value: int, weak: bool) -> int:
    """Pack ``(value, ≤ if weak else <)`` into the integer encoding."""
    return (value << 1) | (1 if weak else 0)


def decode(bound: int) -> tuple[int, bool]:
    """Unpack an encoded bound into ``(value, weak)``.

    ``INF`` decodes to ``(INF >> 1, False)``; callers that may see
    infinity should test ``bound == INF`` first.
    """
    return bound >> 1, bool(bound & 1)


def bound_value(bound: int) -> int:
    """The numeric part of an encoded bound."""
    return bound >> 1


def bound_is_weak(bound: int) -> bool:
    """True when the encoded bound is non-strict (``≤``)."""
    return bool(bound & 1)


def bound_add(a: int, b: int) -> int:
    """Tightest bound implied by chaining ``x-y ≺ a`` and ``y-z ≺ b``.

    Addition of values; the result is weak only when both operands are
    weak.  Infinity absorbs.
    """
    if a == INF or b == INF:
        return INF
    return (((a >> 1) + (b >> 1)) << 1) | (a & b & 1)


def negate_weak(bound: int) -> int:
    """Encoded negation used when complementing a constraint.

    The complement of ``x - y ≺ n`` is ``y - x ≺' -n`` where ``≺'``
    flips strictness: ``¬(x-y ≤ n) ⇔ y-x < -n`` and
    ``¬(x-y < n) ⇔ y-x ≤ -n``.
    """
    value, weak = decode(bound)
    return encode(-value, not weak)


def bound_as_text(bound: int) -> str:
    """Human-readable form, e.g. ``"<=5"``, ``"<3"`` or ``"<inf"``."""
    if bound >= INF:
        return "<inf"
    value, weak = decode(bound)
    return f"{'<=' if weak else '<'}{value}"
