"""Command-line interface: ``repro-timing <command>``.

Commands mirror the paper's workflow:

* ``verify``    — run the full framework pipeline on the case study
* ``portfolio`` — verify a whole scheme grid concurrently (design-
  space sweep over buffer sizes × periods × polling intervals × read
  policies × invocation kinds)
* ``table1``    — regenerate Table I (verification + 60 trials)
* ``simulate``  — run only the measured half (fast)
* ``timeline``  — regenerate the Fig. 3 interaction timeline
* ``render``    — dump the PIM / PSM as Graphviz dot or a summary
* ``scheme``    — print the case-study implementation scheme
* ``monitor``   — check recorded JSONL traces (or stdin) for timed
  conformance against the case-study PSM; one verdict row per trace
* ``serve``     — run the long-lived verification daemon (warm
  workers + server-lifetime verdict cache + precompiled monitor
  models); ``verify``/``portfolio``/``monitor`` forward to it with
  ``--server ADDR``

Every subcommand builds one :class:`repro.api.Session` from the
global knob flags (``--zone-backend``/``--jobs``/``--abstraction``
plus per-command ``--executor``/``--faults``), so the resolution
order *explicit flag > REPRO_* environment > default* is decided in
exactly one place.

Exit codes (``verify``/``portfolio``/``monitor``): **0** every scheme
earned the implementation guarantee (resp. every trace conforms);
**1** a job or tool error (exploration budget, invalid scheme, dead
worker, unreachable server); **2** the pipeline ran fine but a
verdict failed (no guarantee / non-conforming trace); **130**
interrupted (Ctrl-C) — partial results are summarized first.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.blocks import render_blocks
from repro.analysis.portfolio import (
    render_fault_tolerance,
    render_portfolio,
)
from repro.analysis.table1 import run_case_study, simulate_trials
from repro.analysis.timeline import fig3_scenario
from repro.api import Session
from repro.apps.infusion import REQ1_DEADLINE_MS, build_infusion_pim
from repro.apps.schemes import case_study_scheme, scheme_grid
from repro.core.scheme import InvocationKind, ReadPolicy
from repro.core.transform import transform
from repro.envvars import EnvVarError
from repro.mc.parallel import set_default_jobs
from repro.ta.bounds import set_abstraction
from repro.ta.render import network_summary, network_to_dot
from repro.ta.uppaal import network_to_uppaal_xml
from repro.zones.backend import set_backend

__all__ = ["main"]

_READ_POLICIES = {policy.value: policy for policy in ReadPolicy}
_INVOCATION_KINDS = {kind.value: kind for kind in InvocationKind}

#: ``--faults`` key → scheme-factory fault axis.
_FAULT_AXES = {"k": "fault_k", "replicas": "fault_r",
               "jitter": "fault_eps"}


def _parse_faults(spec: str) -> dict[str, list[int]]:
    """``k=0|1,replicas=2,jitter=0`` → fault-axis value lists.

    Each key takes one value (``verify``) or a ``|``-separated sweep
    (``portfolio``); unknown keys and non-integers are argparse-level
    errors so the CLI fails fast with the offending token.
    """
    axes: dict[str, list[int]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _FAULT_AXES:
            raise argparse.ArgumentTypeError(
                f"bad fault axis {part!r}; expected "
                f"k=..|..,replicas=..,jitter=.. with keys from "
                f"{sorted(_FAULT_AXES)}")
        try:
            values = [int(v) for v in value.split("|")]
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"fault axis {key!r} needs integer value(s), "
                f"got {value!r}")
        axes[_FAULT_AXES[key]] = values
    return axes


def _session(args: argparse.Namespace, **extra) -> Session:
    """One resolved :class:`~repro.api.Session` per command run.

    Centralizes the knob-resolution order (explicit flag > ``REPRO_*``
    environment > default — the Session constructor's contract) that
    each subcommand used to re-thread by hand.
    """
    return Session(
        backend=args.zone_backend,
        abstraction=args.abstraction,
        jobs=args.jobs,
        executor=getattr(args, "executor", None),
        faults=getattr(args, "faults", None) or {},
        max_states=getattr(args, "max_states", 1_000_000),
        **extra)


#: Exit-code convention shared by ``verify``, ``portfolio`` and
#: ``monitor`` (and their ``--server`` forwarding): tool/job errors
#: beat verdict failures, so automation can tell "broken" from "not
#: guaranteed".
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_VERDICT_FAIL = 2
EXIT_INTERRUPTED = 130


def _rows_exit_code(rows: "list[dict]") -> int:
    """0 / 1 / 2 from JSON row dicts (local rows or daemon frames)."""
    if any(row.get("status") != "ok" for row in rows):
        return EXIT_ERROR
    if not rows or not all(row.get("guarantee") for row in rows):
        return EXIT_VERDICT_FAIL
    return EXIT_OK


def _forward_jobs(session: Session, server: str, jobs) -> int:
    """Ship jobs to a ``repro serve`` daemon; print streamed rows."""
    import json

    from repro.service.client import ServiceError

    try:
        with session.serve_client(server) as client:
            outcome = client.run_jobs(jobs)
    except (ServiceError, OSError) as exc:
        print(f"server {server}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return EXIT_ERROR
    for row, origin in zip(outcome.ordered_rows(),
                           outcome.origins()):
        print(json.dumps({**row, "origin": origin}))
    cache = (outcome.stats or {}).get("cache", {})
    print(f"# server cache: {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses "
          f"({cache.get('entries', 0)} entries)")
    return _rows_exit_code(outcome.ordered_rows())


def _cmd_verify(args: argparse.Namespace) -> int:
    session = _session(args)
    pim = build_infusion_pim()
    try:
        scheme = case_study_scheme(**session.fault_values())
    except ValueError as exc:
        print(f"--faults: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.server:
        from repro.mc.portfolio import portfolio_jobs

        return _forward_jobs(session, args.server, portfolio_jobs(
            pim, [scheme],
            input_channel="m_BolusReq",
            output_channel="c_StartInfusion",
            deadline_ms=args.deadline,
            measure_suprema=args.suprema,
            max_states=args.max_states))
    try:
        report = session.verify(
            pim, scheme,
            input_channel="m_BolusReq",
            output_channel="c_StartInfusion",
            deadline_ms=args.deadline,
            measure_suprema=args.suprema)
    except KeyboardInterrupt:
        print("\ninterrupted — no verdict", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(report.summary())
    return EXIT_OK if report.implementation_guarantee \
        else EXIT_VERDICT_FAIL


def _cmd_portfolio(args: argparse.Namespace) -> int:
    session = _session(args)
    pim = build_infusion_pim()
    axes = {
        "buffer_size": args.buffer_sizes,
        "period": args.periods,
        "bolus_poll": args.bolus_polls,
        "read_policy": [_READ_POLICIES[v] for v in args.read_policies],
        "invocation_kind": [_INVOCATION_KINDS[v]
                            for v in args.invocation_kinds],
    }
    axes.update(session.fault_axes())
    try:
        schemes = scheme_grid(case_study_scheme, **axes)
    except ValueError as exc:
        print(f"bad grid: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.server:
        from repro.mc.portfolio import portfolio_jobs

        return _forward_jobs(session, args.server, portfolio_jobs(
            pim, schemes,
            input_channel="m_BolusReq",
            output_channel="c_StartInfusion",
            deadline_ms=args.deadline,
            measure_suprema=args.suprema,
            max_states=args.max_states))
    partial = []
    try:
        outcome = session.portfolio(
            pim, schemes,
            input_channel="m_BolusReq",
            output_channel="c_StartInfusion",
            deadline_ms=args.deadline,
            measure_suprema=args.suprema,
            fused=args.fused,
            reuse=args.reuse,
            prune_dominated=args.prune_dominated,
            on_result=partial.append)
    except KeyboardInterrupt:
        # The executors shut down on their own unwind (daemon
        # coordinator threads; cancel_futures on the process pool) —
        # summarize whatever committed before the interrupt.
        print(f"\ninterrupted — {len(partial)}/{len(schemes)} "
              f"schemes finished:", file=sys.stderr)
        for row in sorted(partial, key=lambda r: r.index):
            print(f"  {row.summary()}", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(render_portfolio(outcome, deadline_ms=args.deadline))
    if args.faults:
        # Fault axes were swept — add the Table-I fault column.
        print()
        print(render_fault_tolerance(outcome,
                                     deadline_ms=args.deadline))
    return _rows_exit_code([row.row() for row in outcome.results])


def _monitor_exit_code(rows: "list[dict]") -> int:
    """0 / 1 / 2 from monitor verdict rows (local or daemon)."""
    if any(row.get("status", "ok") != "ok" for row in rows):
        return EXIT_ERROR
    if not rows or not all(row.get("conforming") for row in rows):
        return EXIT_VERDICT_FAIL
    return EXIT_OK


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.monitor import MonitorError, events_from_jsonl

    session = _session(args, monitor_max_states=args.max_states)
    try:
        fault_values = session.fault_values()
    except ValueError as exc:
        print(f"--faults: {exc}", file=sys.stderr)
        return EXIT_ERROR
    names, traces = [], []
    for path in (args.files or ["-"]):
        try:
            if path == "-":
                lines = sys.stdin.read().splitlines()
                names.append("<stdin>")
            else:
                with open(path) as handle:
                    lines = handle.read().splitlines()
                names.append(path)
            traces.append(events_from_jsonl(lines))
        except (OSError, MonitorError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return EXIT_ERROR
    requirement = ("m_BolusReq", "c_StartInfusion", args.deadline)
    if args.server:
        from repro.service.client import ServiceError

        try:
            with session.serve_client(args.server) as client:
                outcome = client.monitor(
                    traces,
                    pim_factory="repro.apps.infusion:"
                                "build_infusion_pim",
                    scheme_kwargs=fault_values or None,
                    requirement=requirement)
        except (ServiceError, OSError) as exc:
            print(f"server {args.server}: {type(exc).__name__}: "
                  f"{exc}", file=sys.stderr)
            return EXIT_ERROR
        rows = outcome.ordered_rows()
        for name, row in zip(names, rows):
            print(json.dumps({"trace": name, **row}))
        return _monitor_exit_code(rows)
    try:
        verdicts = session.monitor(
            traces, pim=build_infusion_pim(),
            scheme=case_study_scheme(**fault_values),
            requirement=requirement)
    except KeyboardInterrupt:
        print("\ninterrupted — no verdict", file=sys.stderr)
        return EXIT_INTERRUPTED
    for name, verdict in zip(names, verdicts):
        print(json.dumps({"trace": name, **verdict}))
    return _monitor_exit_code(verdicts)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.scheduler import JobScheduler
    from repro.service.server import VerificationServer

    if args.unix is not None and args.port is not None:
        print("pass either --port or --unix, not both",
              file=sys.stderr)
        return EXIT_ERROR
    scheduler = JobScheduler(
        jobs=args.jobs,
        executor=args.executor,
        max_states=args.max_states,
        abstraction=args.abstraction,
        cache_entries=args.cache_entries,
        dispatch_threads=args.dispatch_threads,
        warm_start_max_zones=args.warm_start_max_zones,
        workers=args.workers,
        min_idle=args.min_idle,
        recycle_after_executions=args.recycle_after,
        job_timeout=args.job_timeout)
    if args.unix is not None:
        server = VerificationServer(scheduler, path=args.unix)
    else:
        port = args.port if args.port is not None else 7315
        server = VerificationServer(scheduler, host=args.host,
                                    port=port)

    async def run() -> None:
        await server.start()
        if isinstance(server.address, tuple):
            host, port = server.address
            print(f"listening on {host}:{port}", flush=True)
        else:
            print(f"listening on unix:{server.address}", flush=True)
        await server.serve()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        # The loop's own SIGINT handler normally drains first; this
        # only triggers when the interrupt lands outside the loop.
        pass
    print("server drained, bye", flush=True)
    return EXIT_OK


def _cmd_table1(args: argparse.Namespace) -> int:
    table = run_case_study(trials=args.trials, seed=args.seed,
                           max_states=args.max_states)
    print(table.render())
    return 0 if table.shape_holds else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    pim = build_infusion_pim()
    scheme = case_study_scheme()
    monitor_session = None
    listener = None
    if args.monitor:
        from repro.monitor import MonitorSession

        session = _session(args, monitor_max_states=20_000)
        model = session.monitor_model(pim=pim, scheme=scheme)
        monitor_session = MonitorSession(
            model, requirement=("m_BolusReq", "c_StartInfusion",
                                REQ1_DEADLINE_MS))
        listener = monitor_session.observe
    measured = simulate_trials(pim, scheme, trials=args.trials,
                               seed=args.seed,
                               trace_listener=listener)
    print(f"requests={measured.requests} responses={measured.responses} "
          f"timeouts={measured.timeouts}")
    print(f"M-C delay:    {measured.mc}")
    print(f"Input-Delay:  {measured.input}")
    print(f"Output-Delay: {measured.output}")
    print(f"platform:     {measured.stats.summary()}")
    violations = measured.req_violations(REQ1_DEADLINE_MS)
    print(f"REQ1 violations: {violations}/{len(measured.timings)}")
    if monitor_session is not None:
        verdict = monitor_session.verdict()
        state = "conforming" if verdict["conforming"] \
            else "NON-CONFORMING"
        print(f"monitor: {state} "
              f"({verdict['observed']} boundary events checked)")
        if monitor_session.deviation is not None:
            print(monitor_session.deviation.describe())
        if not verdict["conforming"]:
            return EXIT_VERDICT_FAIL
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    policy = ReadPolicy.READ_ALL if args.policy == "read-all" \
        else ReadPolicy.READ_ONE
    result = fig3_scenario(policy)
    print(f"Fig. 3 scenario under {policy.value}:")
    print(result.rendered())
    print("\nreads per invocation:")
    for invocation, reads in sorted(result.reads_per_invocation.items()):
        shown = ", ".join(reads) if reads else "Null"
        print(f"  invocation {invocation}: {shown}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    pim = build_infusion_pim()
    if args.model == "pim":
        network = pim.network
    else:
        network = transform(pim, case_study_scheme()).network
    if args.format == "dot":
        print(network_to_dot(network))
    elif args.format == "uppaal":
        print(network_to_uppaal_xml(network))
    elif args.format == "blocks":
        if args.model == "pim":
            print("the blocks view requires the PSM (--model psm)",
                  file=sys.stderr)
            return 2
        print(render_blocks(transform(pim, case_study_scheme())))
    else:
        print(network_summary(network))
    return 0


def _cmd_scheme(_args: argparse.Namespace) -> int:
    print(case_study_scheme().describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-timing",
        description="Platform-specific timing verification framework "
                    "(DATE 2015 reproduction)")
    parser.add_argument(
        "--zone-backend",
        choices=["auto", "reference", "numpy", "native"],
        default=None,
        help="DBM kernel for all model checking (default: auto — "
             "picks the cheapest available backend per model from a "
             "committed cost table: the compiled C kernel when built, "
             "else numpy or the pure-Python reference by model size; "
             "also settable via REPRO_ZONE_BACKEND)")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for sharded parallel exploration (threads "
             "on the numpy backend, processes on the reference one; "
             "N=1 still enables the batched wave pipeline; default: "
             "sequential engine; also settable via REPRO_JOBS)")
    parser.add_argument(
        "--abstraction", choices=["extra_m", "extra_lu"], default=None,
        help="zone extrapolation operator for all model checking "
             "(default: extra_m — global max constants, the published "
             "seed behavior; extra_lu switches to per-location "
             "Extra+_LU bounds: identical verdicts, Lemma-2 bounds "
             "and suprema, but much smaller zone graphs — "
             "recommended for portfolio sweeps; also settable via "
             "REPRO_ABSTRACTION)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="full verification pipeline")
    p_verify.add_argument("--deadline", type=int,
                          default=REQ1_DEADLINE_MS)
    p_verify.add_argument("--max-states", type=int, default=2_000_000)
    p_verify.add_argument("--suprema", action="store_true",
                          help="also measure exact PSM delay suprema")
    p_verify.add_argument("--faults", type=_parse_faults, default=None,
                          metavar="SPEC",
                          help="fault axes for the scheme, e.g. "
                               "k=1,replicas=2,jitter=2 (k: message-"
                               "loss/re-execution budget; replicas: "
                               "task replication with majority "
                               "voting; jitter: ±ε ms clock envelope)")
    p_verify.add_argument("--server", metavar="ADDR", default=None,
                          help="forward to a running 'repro serve' "
                               "daemon instead of verifying locally "
                               "(ADDR: host:port or a unix socket "
                               "path); repeated equivalent runs are "
                               "answered from the server's verdict "
                               "cache")
    p_verify.set_defaults(fn=_cmd_verify)

    p_port = sub.add_parser(
        "portfolio",
        help="verify a scheme grid concurrently (design-space sweep)",
        description="Sweep the case-study platform over a cartesian "
                    "grid of scheme parameters and verify every "
                    "candidate concurrently over one shared worker "
                    "pool.  Grid syntax: each --<axis> flag takes one "
                    "or more values; the portfolio is the cartesian "
                    "product (e.g. --buffer-sizes 2 5 --periods 50 "
                    "100 gives 4 schemes).  The default grid is the "
                    "benchmarked 16-scheme sweep.")
    p_port.add_argument("--buffer-sizes", type=int, nargs="+",
                        default=[2, 5], metavar="N",
                        help="io-buffer sizes to sweep (default: 2 5)")
    p_port.add_argument("--periods", type=int, nargs="+",
                        default=[50, 100], metavar="MS",
                        help="invocation periods in ms "
                             "(default: 50 100)")
    p_port.add_argument("--bolus-polls", type=int, nargs="+",
                        default=[190, 380], metavar="MS",
                        help="bolus-input polling intervals in ms "
                             "(default: 190 380)")
    p_port.add_argument("--read-policies", nargs="+",
                        choices=sorted(_READ_POLICIES),
                        default=["read-all", "read-one"],
                        help="io read policies (default: both)")
    p_port.add_argument("--invocation-kinds", nargs="+",
                        choices=sorted(_INVOCATION_KINDS),
                        default=["periodic"],
                        help="code invocation kinds "
                             "(default: periodic)")
    p_port.add_argument("--deadline", type=int,
                        default=REQ1_DEADLINE_MS)
    p_port.add_argument("--max-states", type=int, default=2_000_000,
                        help="per-scheme exploration budget")
    p_port.add_argument("--suprema", action="store_true",
                        help="also measure exact PSM delay suprema "
                             "per scheme")
    p_port.add_argument("--faults", type=_parse_faults, default=None,
                        metavar="SPEC",
                        help="fault axes to sweep, '|'-separated per "
                             "key, e.g. k=0|1,replicas=1|2,jitter=0 "
                             "— each combination multiplies the grid; "
                             "a fault-tolerance table (largest "
                             "tolerated k + Lemma-2 inflation per "
                             "base scheme) follows the portfolio "
                             "table")
    p_port.add_argument("--fused", action="store_true",
                        help="compile each scheme's deadline+suprema "
                             "queries into one shared sweep (same "
                             "verdicts; shared-sweep state tallies)")
    p_port.add_argument("--reuse", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="answer schemes whose compiled model is "
                             "canonically identical (up to "
                             "semantically-inert buffer capacities) "
                             "from a verdict memo instead of "
                             "re-exploring — rows stay bit-identical; "
                             "--no-reuse forces every scheme through "
                             "its own sweep (default: reuse on)")
    p_port.add_argument("--prune-dominated", action="store_true",
                        help="derive Theorem-1 verdicts for grid "
                             "points dominated along the monotone "
                             "poll/period axes from a verified harder "
                             "neighbor (rows carry derived=<donor> "
                             "provenance; failures never transfer — "
                             "dominated points re-run when the donor "
                             "earns no guarantee)")
    p_port.add_argument("--executor", choices=["thread", "process"],
                        default=None,
                        help="job-level execution mode (default: "
                             "thread — scheme pipelines share one "
                             "worker-thread pool, right for the numpy "
                             "backend; process partitions whole jobs "
                             "across --jobs worker processes — true "
                             "multi-core for the pure-Python "
                             "reference backend; also settable via "
                             "REPRO_EXECUTOR)")
    p_port.add_argument("--server", metavar="ADDR", default=None,
                        help="forward the whole grid to a running "
                             "'repro serve' daemon (ADDR: host:port "
                             "or a unix socket path); rows stream "
                             "back as JSON lines tagged with their "
                             "origin (explored/memo/cancelled)")
    p_port.set_defaults(fn=_cmd_portfolio)

    p_mon = sub.add_parser(
        "monitor",
        help="check recorded traces for timed conformance",
        description="Replay recorded event traces (JSONL, one event "
                    "per line — the repro.monitor.events schema) "
                    "through the online conformance monitor and "
                    "report, per trace, whether every boundary event "
                    "arrived at a time the verified PSM admits.  One "
                    "session runs per input file (stdin when no file "
                    "is given); verdicts print as JSON rows.  With "
                    "--server the traces stream to a running 'repro "
                    "serve' daemon, which keeps the precompiled "
                    "monitor model warm across requests.")
    p_mon.add_argument("files", nargs="*", metavar="TRACE",
                       help="JSONL trace files ('-' or none: stdin)")
    p_mon.add_argument("--deadline", type=int,
                       default=REQ1_DEADLINE_MS,
                       help="REQ1 deadline quoted in deviation "
                            "reports (ms)")
    p_mon.add_argument("--max-states", type=int, default=20_000,
                       help="zone-graph precompilation budget; the "
                            "monitor falls back to on-demand "
                            "stepping past it (default: 20000)")
    p_mon.add_argument("--faults", type=_parse_faults, default=None,
                       metavar="SPEC",
                       help="fault axes for the monitored scheme "
                            "(one value per axis, like verify)")
    p_mon.add_argument("--server", metavar="ADDR", default=None,
                       help="stream the traces to a running 'repro "
                            "serve' daemon instead of monitoring "
                            "locally")
    p_mon.set_defaults(fn=_cmd_monitor)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived verification daemon",
        description="Boot a verification daemon that keeps verdicts "
                    "and warm state across requests: a bounded "
                    "server-lifetime verdict cache (equivalent jobs "
                    "from any client resolve to one exploration + N "
                    "cache hits), a capped warm-start zone table, and "
                    "— under --executor process — a pool of "
                    "pre-forked warm workers that are health-checked "
                    "and recycled.  Clients connect with 'repro "
                    "verify/portfolio --server ADDR'.  SIGTERM/SIGINT "
                    "drain gracefully: running jobs finish, queued "
                    "ones return explicit cancelled rows.  The framed "
                    "protocol accepts pickled jobs by value, so only "
                    "listen where every client is trusted (the unix "
                    "socket is created mode 0700).")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind host (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         metavar="PORT",
                         help="TCP port (default: 7315; 0 = "
                              "ephemeral; the bound address is "
                              "printed on stdout)")
    p_serve.add_argument("--unix", metavar="PATH", default=None,
                         help="listen on a unix socket instead of TCP")
    p_serve.add_argument("--max-states", type=int, default=2_000_000,
                         help="per-job exploration budget")
    p_serve.add_argument("--cache-entries", type=int, default=1024,
                         metavar="N",
                         help="verdict-cache capacity in memo entries "
                              "(LRU-evicted; default: 1024)")
    p_serve.add_argument("--warm-start-max-zones", type=int,
                         default=200_000, metavar="N",
                         help="cap on the cross-request warm-start "
                              "zone table; the table resets when "
                              "interning would exceed it "
                              "(default: 200000)")
    p_serve.add_argument("--dispatch-threads", type=int, default=8,
                         metavar="N",
                         help="concurrent job dispatchers "
                              "(default: 8)")
    p_serve.add_argument("--executor", choices=["thread", "process"],
                         default=None,
                         help="execution mode (default: thread; "
                              "process uses the warm pre-forked "
                              "worker pool; also settable via "
                              "REPRO_EXECUTOR)")
    p_serve.add_argument("--workers", type=int, default=None,
                         metavar="N",
                         help="warm worker pool size for --executor "
                              "process (default: --jobs, else 2)")
    p_serve.add_argument("--min-idle", type=int, default=None,
                         metavar="N",
                         help="warm spares kept pre-forked "
                              "(default: the pool size)")
    p_serve.add_argument("--recycle-after", type=int, default=None,
                         metavar="N",
                         help="retire a worker after N jobs to bound "
                              "per-process memory growth "
                              "(default: never)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill and replace a worker whose job "
                              "exceeds this wall time "
                              "(default: unlimited)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_table = sub.add_parser("table1", help="regenerate Table I")
    p_table.add_argument("--trials", type=int, default=60)
    p_table.add_argument("--seed", type=int, default=2015)
    p_table.add_argument("--max-states", type=int, default=2_000_000)
    p_table.set_defaults(fn=_cmd_table1)

    p_sim = sub.add_parser("simulate", help="measured half only")
    p_sim.add_argument("--trials", type=int, default=60)
    p_sim.add_argument("--seed", type=int, default=2015)
    p_sim.add_argument("--monitor", action="store_true",
                       help="self-check the run: a live conformance "
                            "monitor observes every boundary event "
                            "as the simulation records it and the "
                            "verdict prints after the delay summary "
                            "(exit 2 on non-conformance)")
    p_sim.set_defaults(fn=_cmd_simulate)

    p_tl = sub.add_parser("timeline", help="Fig. 3 timeline")
    p_tl.add_argument("--policy", choices=["read-one", "read-all"],
                      default="read-all")
    p_tl.set_defaults(fn=_cmd_timeline)

    p_render = sub.add_parser("render", help="dump models")
    p_render.add_argument("--model", choices=["pim", "psm"],
                          default="pim")
    p_render.add_argument("--format",
                          choices=["summary", "dot", "blocks",
                                   "uppaal"],
                          default="summary")
    p_render.set_defaults(fn=_cmd_render)

    p_scheme = sub.add_parser("scheme", help="show the case-study scheme")
    p_scheme.set_defaults(fn=_cmd_scheme)
    return parser


def _check_environment() -> None:
    """Fail fast on malformed ``REPRO_*`` variables.

    Every resolver validates lazily at first use; running them here
    turns a mid-pipeline stack trace into a one-line startup error.
    """
    from repro.mc.parallel import resolve_jobs
    from repro.mc.portfolio import resolve_executor
    from repro.ta.bounds import resolve_abstraction
    from repro.zones.backend import requested_backend

    resolve_jobs(None)
    resolve_executor(None)
    resolve_abstraction(None)
    requested_backend(None)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        _check_environment()
        if args.zone_backend is not None:
            set_backend(args.zone_backend)
        if args.jobs is not None:
            set_default_jobs(args.jobs)
        if args.abstraction is not None:
            set_abstraction(args.abstraction)
        return args.fn(args)
    except EnvVarError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:
        # Commands catch this themselves to summarize partial work;
        # this net only covers interrupts outside those windows.
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
