"""repro — Platform-Specific Timing Verification Framework.

A reproduction of Kim, Feng, Phan, Sokolsky & Lee, *"Platform-Specific
Timing Verification Framework in Model-Based Implementation"*,
DATE 2015.

The package layers, bottom to top:

* :mod:`repro.zones` — difference bound matrices (zone algebra)
* :mod:`repro.ta` — timed-automata modeling language (UPPAAL subset)
* :mod:`repro.mc` — zone-based model checker (reachability, sup
  queries, bounded leads-to)
* :mod:`repro.codegen` — TIMES-like code generation from verified
  models
* :mod:`repro.sim` / :mod:`repro.platforms` / :mod:`repro.envs` —
  discrete-event platform simulator (the "implementation")
* :mod:`repro.core` — the paper's contribution: implementation
  schemes, the PIM→PSM transformation and the delay-bound analysis
* :mod:`repro.apps` — the infusion-pump case study
* :mod:`repro.analysis` — delay statistics and report/figure renderers

Quickstart::

    from repro.apps import build_infusion_pim, case_study_scheme
    from repro.core import TimingVerificationFramework

    fw = TimingVerificationFramework()
    report = fw.verify(build_infusion_pim(), case_study_scheme(),
                       input_channel="m_BolusReq",
                       output_channel="c_StartInfusion",
                       deadline_ms=500)
    print(report.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
