"""Infusion pump PIM — reconstruction of the paper's Fig. 1.

The exact UPPAAL model lives in the authors' technical report
(MS-CIS-14-11), which is not available; this reconstruction follows
everything the paper states about it:

* ``M`` models the software with one clock ``x``, input
  synchronizations ``m_BolusReq`` and ``m_EmptySyringe`` and output
  synchronizations ``c_StartInfusion``, ``c_StopInfusion`` and
  ``c_Alarm``;
* REQ1 — bolus infusion starts within **500 ms** of a request — holds
  on the PIM (the ``BolusRequested`` invariant), and 500 ms is also
  the pair's maximum internal delay ``Δ_io-internal`` used by Lemma 2
  (490 + 440 + 500 = 1430 in Table I);
* ``ENV`` drives the pump with one clock and complementary
  synchronizations, one outstanding request at a time.

Model walk-through: a bolus request primes the pump (at least
``PRIME_MS``) before infusion starts — the lower bound makes the
*measured* internal delay of the implementation nontrivial, as in the
paper's Table I where the mean M-C delay (610 ms) far exceeds the sum
of the mean input and output delays (97 + 215 ms).  Infusion then
either completes normally (``c_StopInfusion``) or is interrupted by an
empty-syringe signal, which stops the pump and raises an alarm.
"""

from __future__ import annotations

from repro.core.pim import PIM
from repro.ta.builder import NetworkBuilder
from repro.ta.model import Network

__all__ = [
    "INPUT_CHANNELS",
    "OUTPUT_CHANNELS",
    "REQ1_DEADLINE_MS",
    "INTERNAL_DELAY_MS",
    "build_infusion_network",
    "build_infusion_pim",
]

INPUT_CHANNELS = ("m_BolusReq", "m_EmptySyringe")
OUTPUT_CHANNELS = ("c_StartInfusion", "c_StopInfusion", "c_Alarm")

#: REQ1's deadline (the paper adds the 500 ms parameter to the GPCA
#: requirement to make the discussion concrete).
REQ1_DEADLINE_MS = 500

#: Maximum internal processing delay of the (m_BolusReq,
#: c_StartInfusion) pair in the PIM — the ``Δ_io-internal`` of Lemma 2.
INTERNAL_DELAY_MS = 500

# Model constants (ms).
_DEFAULTS = {
    # Pump priming: infusion starts no earlier than this after the
    # request is read, and (REQ1) no later than START_DEADLINE.
    "PRIME_MS": 250,
    "START_DEADLINE": REQ1_DEADLINE_MS,
    # Bolus shot duration bounds.  INFUSE_MIN leaves margin above the
    # worst-case empty-syringe delivery path (output actuation 440 +
    # EMPTY_AFTER 400 + interrupt 3 + read wait 100 ≈ 943 ms), so an
    # empty-syringe event can never arrive after the shot already
    # completed — the race Constraint 4 would otherwise flag.
    "INFUSE_MIN": 1200,
    "INFUSE_MAX": 1500,
    # Reaction bound to an empty-syringe event.
    "STOP_BOUND": 50,
    "ALARM_BOUND": 50,
    # Environment: patient think time between requests, and how long
    # a syringe lasts before it *may* run empty mid-infusion.
    "THINK_MIN": 2000,
    "EMPTY_AFTER": 400,
}


def build_infusion_network(
        overrides: dict[str, int] | None = None) -> Network:
    """The PIM network ``M ‖ ENV`` (Fig. 1)."""
    constants = dict(_DEFAULTS)
    if overrides:
        unknown = set(overrides) - set(constants)
        if unknown:
            raise ValueError(
                f"unknown infusion-model constants: {sorted(unknown)}")
        constants.update(overrides)

    net = NetworkBuilder("infusion_pim", constants=constants)
    net.channels(list(INPUT_CHANNELS))
    net.channels(list(OUTPUT_CHANNELS))

    # ---- M: the pump software (Fig. 1-(1)) ----------------------------
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("BolusRequested", invariant="x <= START_DEADLINE")
    m.location("Infusing", invariant="x <= INFUSE_MAX")
    m.location("EmptySyringe", invariant="x <= STOP_BOUND")
    m.location("AlarmPending", invariant="x <= ALARM_BOUND")

    m.edge("Idle", "BolusRequested", sync="m_BolusReq?", update="x = 0")
    m.edge("BolusRequested", "Infusing", guard="x >= PRIME_MS",
           sync="c_StartInfusion!", update="x = 0")
    # Normal completion of the bolus shot (no internal step: the
    # PIM→PSM transformation requires io-visible behavior only).
    m.edge("Infusing", "Idle", guard="x >= INFUSE_MIN",
           sync="c_StopInfusion!", update="x = 0")
    # Interrupted by an empty syringe.
    m.edge("Infusing", "EmptySyringe", sync="m_EmptySyringe?",
           update="x = 0")
    m.edge("EmptySyringe", "AlarmPending", sync="c_StopInfusion!",
           update="x = 0")
    m.edge("AlarmPending", "Idle", sync="c_Alarm!", update="x = 0")

    # ---- ENV: the patient/plant (Fig. 1-(2)) ---------------------------
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Requested")
    env.location("Observing")
    env.location("Draining", invariant="ex <= EMPTY_AFTER")
    env.location("AwaitAlarm")

    env.edge("Rest", "Requested", guard="ex >= THINK_MIN",
             sync="m_BolusReq!", update="ex = 0")
    # The syringe's fate is decided (nondeterministically) the moment
    # the infusion starts: either the shot will complete normally, or
    # the syringe runs empty EMPTY_AFTER ms in.  Branching here —
    # rather than via a lazy internal step — keeps the empty-syringe
    # signal inside the infusion window, which Constraint 4 needs.
    env.edge("Requested", "Observing", sync="c_StartInfusion?",
             update="ex = 0")
    env.edge("Requested", "Draining", sync="c_StartInfusion?",
             update="ex = 0")
    env.edge("Observing", "Rest", sync="c_StopInfusion?", update="ex = 0")
    env.edge("Draining", "AwaitAlarm", guard="ex >= EMPTY_AFTER",
             sync="m_EmptySyringe!", update="ex = 0")
    env.edge("AwaitAlarm", "AwaitAlarm", sync="c_StopInfusion?")
    env.edge("AwaitAlarm", "Rest", sync="c_Alarm?", update="ex = 0")
    # Receptiveness: a stop racing the empty-syringe signal must not
    # block the pump.
    env.edge("Draining", "Rest", sync="c_StopInfusion?", update="ex = 0")

    return net.build()


def build_infusion_pim(overrides: dict[str, int] | None = None) -> PIM:
    """The infusion-pump PIM with controller/environment roles marked."""
    network = build_infusion_network(overrides)
    return PIM(network=network, controller="M", environment="ENV")
