"""Case-study models (the paper's Section VI artifacts)."""

from repro.apps.gpca import (
    GPCA_INPUTS,
    GPCA_OUTPUTS,
    GPCA_REQUIREMENTS,
    Requirement,
    build_gpca_network,
    build_gpca_pim,
    verify_gpca_requirements,
)
from repro.apps.infusion import (
    INPUT_CHANNELS,
    INTERNAL_DELAY_MS,
    OUTPUT_CHANNELS,
    REQ1_DEADLINE_MS,
    build_infusion_network,
    build_infusion_pim,
)
from repro.apps.schemes import (
    BOLUS_POLL_MS,
    OUTPUT_POLL_MS,
    case_study_scheme,
    example_is1_scheme,
)

__all__ = [
    "BOLUS_POLL_MS",
    "GPCA_INPUTS",
    "GPCA_OUTPUTS",
    "GPCA_REQUIREMENTS",
    "INPUT_CHANNELS",
    "Requirement",
    "build_gpca_network",
    "build_gpca_pim",
    "verify_gpca_requirements",
    "INTERNAL_DELAY_MS",
    "OUTPUT_CHANNELS",
    "OUTPUT_POLL_MS",
    "REQ1_DEADLINE_MS",
    "build_infusion_network",
    "build_infusion_pim",
    "case_study_scheme",
    "example_is1_scheme",
]
