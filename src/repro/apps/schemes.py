"""Implementation schemes for the infusion-pump case study.

:func:`case_study_scheme` is the platform of Section VI: the paper's
IS1 (buffers of size 5, read-all, periodic invocation with period
100 ms) *"except that the polling scheme is used to read the bolus
request input"*.  The concrete parameters (polling intervals, device
processing delays, WCET) come from the authors' tech report, which is
unavailable — ours are chosen so that the Lemma-1 verified bounds
reproduce Table I exactly:

* Input-Delay bound  = poll 380 + processing 10 + period 100 = **490 ms**
* Output-Delay bound = wcet 10 + motor actuation 430         = **440 ms**
* Δ'_mc (Lemma 2)    = 490 + 440 + 500 (internal)            = **1430 ms**

:func:`example_is1_scheme` is the paper's Example 1 verbatim (all
inputs pulse/interrupt) for the Fig. 3 timeline experiment.
"""

from __future__ import annotations

from repro.apps.infusion import INPUT_CHANNELS, OUTPUT_CHANNELS
from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
    example_is1,
)

__all__ = [
    "BOLUS_POLL_MS",
    "OUTPUT_POLL_MS",
    "case_study_scheme",
    "example_is1_scheme",
]

#: Polling interval of the bolus-request input (ms).
BOLUS_POLL_MS = 380
#: Polling interval of the pump-motor output device (ms).
OUTPUT_POLL_MS = 400


def case_study_scheme(*, buffer_size: int = 5,
                      period: int = 100,
                      bolus_poll: int = BOLUS_POLL_MS,
                      output_poll: int = OUTPUT_POLL_MS,
                      read_policy: ReadPolicy = ReadPolicy.READ_ALL,
                      ) -> ImplementationScheme:
    """The Section-VI platform (IS1 + polled bolus input)."""
    inputs = {
        # The bolus button presents a latched level to a poller.
        "m_BolusReq": InputSpec(
            signal=SignalType.LATCHED,
            mechanism=ReadMechanism.POLLING,
            delay_min=5, delay_max=10,
            polling_interval=bolus_poll),
        # The empty-syringe (drop) sensor fires an interrupt.
        "m_EmptySyringe": InputSpec(
            signal=SignalType.PULSE,
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
    }
    outputs = {
        # The pump-motor actuation path (the one REQ1 measures):
        # event-driven pickup, but the motor takes 15–430 ms from
        # command to observable infusion (spin-up/priming).  The
        # resulting verified Output-Delay bound is wcet 10 + 430 =
        # 440 ms — Table I's value.
        "c_StartInfusion": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=15, delay_max=430),
        "c_StopInfusion": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
        "c_Alarm": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
    }
    io_inputs = {
        channel: IOSpec(delivery=DeliveryMechanism.BUFFER,
                        buffer_size=buffer_size,
                        read_policy=read_policy)
        for channel in INPUT_CHANNELS
    }
    io_outputs = {
        channel: IOSpec(delivery=DeliveryMechanism.BUFFER,
                        buffer_size=buffer_size)
        for channel in OUTPUT_CHANNELS
    }
    return ImplementationScheme(
        name="IS1-case-study",
        inputs=inputs,
        outputs=outputs,
        io_inputs=io_inputs,
        io_outputs=io_outputs,
        invocation=InvocationSpec(kind=InvocationKind.PERIODIC,
                                  period=period, bcet=1, wcet=10),
    ).validate()


def example_is1_scheme(*, buffer_size: int = 5,
                       period: int = 100) -> ImplementationScheme:
    """The paper's Example 1 (IS1) applied to the pump's channels."""
    return example_is1(INPUT_CHANNELS, OUTPUT_CHANNELS,
                       buffer_size=buffer_size, period=period)
