"""Implementation schemes for the infusion-pump case study.

:func:`case_study_scheme` is the platform of Section VI: the paper's
IS1 (buffers of size 5, read-all, periodic invocation with period
100 ms) *"except that the polling scheme is used to read the bolus
request input"*.  The concrete parameters (polling intervals, device
processing delays, WCET) come from the authors' tech report, which is
unavailable — ours are chosen so that the Lemma-1 verified bounds
reproduce Table I exactly:

* Input-Delay bound  = poll 380 + processing 10 + period 100 = **490 ms**
* Output-Delay bound = wcet 10 + motor actuation 430         = **440 ms**
* Δ'_mc (Lemma 2)    = 490 + 440 + 500 (internal)            = **1430 ms**

:func:`example_is1_scheme` is the paper's Example 1 verbatim (all
inputs pulse/interrupt) for the Fig. 3 timeline experiment.

:func:`scheme_grid` generates *portfolios* of candidate schemes —
the cartesian sweep over platform parameters (buffer sizes, polling
intervals, periods, invocation kinds, read policies) that
:class:`repro.mc.portfolio.PortfolioVerifier` verifies concurrently.
"""

from __future__ import annotations

import importlib
import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Iterable

from repro.apps.infusion import INPUT_CHANNELS, OUTPUT_CHANNELS
from repro.core.scheme import (
    DeliveryMechanism,
    FaultSpec,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
    example_is1,
)

__all__ = [
    "BOLUS_POLL_MS",
    "CASE_STUDY_FAULT_GRID_4",
    "CASE_STUDY_GRID_16",
    "GridSpec",
    "OUTPUT_POLL_MS",
    "case_study_grid_16",
    "case_study_scheme",
    "example_is1_scheme",
    "replicated_case_study_scheme",
    "scheme_grid",
]

#: Polling interval of the bolus-request input (ms).
BOLUS_POLL_MS = 380
#: Polling interval of the pump-motor output device (ms).
OUTPUT_POLL_MS = 400


def case_study_scheme(*, buffer_size: int = 5,
                      period: int = 100,
                      bolus_poll: int = BOLUS_POLL_MS,
                      output_poll: int = OUTPUT_POLL_MS,
                      read_policy: ReadPolicy = ReadPolicy.READ_ALL,
                      invocation_kind: InvocationKind =
                      InvocationKind.PERIODIC,
                      fault_k: int = 0,
                      fault_r: int = 1,
                      fault_eps: int = 0,
                      ) -> ImplementationScheme:
    """The Section-VI platform (IS1 + polled bolus input).

    ``invocation_kind`` opens the scheme up as a grid axis: the
    aperiodic variant keeps the paper's execution-time envelope
    (bcet 1 / wcet 10) and reuses ``period`` as the worst-case
    scheduling latency, so the Lemma-1 delivery-wait term stays
    comparable across the two kinds.

    ``fault_k`` / ``fault_r`` / ``fault_eps`` open the
    :class:`~repro.core.scheme.FaultSpec` axes (message-loss budget,
    replica count, clock jitter) for (scheme × k × r × ε) sweeps;
    the defaults produce a scheme bit-identical to the fault-free
    one.
    """
    inputs = {
        # The bolus button presents a latched level to a poller.
        "m_BolusReq": InputSpec(
            signal=SignalType.LATCHED,
            mechanism=ReadMechanism.POLLING,
            delay_min=5, delay_max=10,
            polling_interval=bolus_poll),
        # The empty-syringe (drop) sensor fires an interrupt.
        "m_EmptySyringe": InputSpec(
            signal=SignalType.PULSE,
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
    }
    outputs = {
        # The pump-motor actuation path (the one REQ1 measures):
        # event-driven pickup, but the motor takes 15–430 ms from
        # command to observable infusion (spin-up/priming).  The
        # resulting verified Output-Delay bound is wcet 10 + 430 =
        # 440 ms — Table I's value.
        "c_StartInfusion": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=15, delay_max=430),
        "c_StopInfusion": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
        "c_Alarm": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT,
            delay_min=1, delay_max=3),
    }
    io_inputs = {
        channel: IOSpec(delivery=DeliveryMechanism.BUFFER,
                        buffer_size=buffer_size,
                        read_policy=read_policy)
        for channel in INPUT_CHANNELS
    }
    io_outputs = {
        channel: IOSpec(delivery=DeliveryMechanism.BUFFER,
                        buffer_size=buffer_size)
        for channel in OUTPUT_CHANNELS
    }
    if invocation_kind is InvocationKind.PERIODIC:
        invocation = InvocationSpec(kind=InvocationKind.PERIODIC,
                                    period=period, bcet=1, wcet=10)
    else:
        invocation = InvocationSpec(
            kind=InvocationKind.APERIODIC, period=None, bcet=1,
            wcet=10, latency_min=0, latency_max=period,
            min_separation=10)
    return ImplementationScheme(
        name="IS1-case-study",
        inputs=inputs,
        outputs=outputs,
        io_inputs=io_inputs,
        io_outputs=io_outputs,
        invocation=invocation,
        faults=FaultSpec(max_losses=fault_k, replicas=fault_r,
                         jitter=fault_eps),
    ).validate()


def replicated_case_study_scheme(*, fault_k: int = 0,
                                 **kwargs) -> ImplementationScheme:
    """The case-study platform on a duplex (r = 2) voting host.

    With two replicas the quorum is 2 and every tolerated fault costs
    one full re-execution round, so the Lemma-1 compute bound is
    ``(1 + k) · wcet``; the *same* loss budget also buys ``k`` input
    redeliveries (``+ k · delay_max``).  At ``k = 0`` the scheme meets
    the fault-free relaxed deadline Δ'_mc = 1430 ms exactly, and each
    unit of fault budget inflates it by 20 ms (10 ms compute round +
    10 ms redelivery): 1450 ms at ``k = 1`` — the fault-tolerance
    column's demonstration scheme.
    """
    scheme = case_study_scheme(fault_k=fault_k, fault_r=2, **kwargs)
    return replace(scheme, name="IS1-case-study-duplex").validate()


def example_is1_scheme(*, buffer_size: int = 5,
                       period: int = 100) -> ImplementationScheme:
    """The paper's Example 1 (IS1) applied to the pump's channels."""
    return example_is1(INPUT_CHANNELS, OUTPUT_CHANNELS,
                       buffer_size=buffer_size, period=period)


# ----------------------------------------------------------------------
# Scheme portfolios (design-space sweeps)
# ----------------------------------------------------------------------
def _axis_label(value: object) -> str:
    if isinstance(value, Enum):
        return str(value.value)
    return str(value)


def scheme_grid(factory: Callable[..., ImplementationScheme] =
                case_study_scheme,
                **axes: Iterable) -> list[ImplementationScheme]:
    """Cartesian sweep of scheme parameters → a validated portfolio.

    Every keyword names a ``factory`` parameter and supplies the values
    to sweep; the grid is the cartesian product in the given axis
    order, with the *last* axis varying fastest (``itertools.product``
    order), so the portfolio's job order is deterministic.  Each
    scheme is built (and therefore validated) by ``factory`` and
    renamed ``"<base>[axis=value,...]"`` so portfolio rows, benchmark
    records and reports stay self-describing::

        scheme_grid(buffer_size=(1, 5), period=(50, 100))
        # -> IS1-case-study[buffer_size=1,period=50], ... (4 schemes)

    Works with any scheme factory — the test suite sweeps its tiny
    conftest scheme the same way.
    """
    if not axes:
        raise ValueError("scheme_grid needs at least one axis to sweep")
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ValueError(f"axis {name!r} has no values to sweep")
    portfolio: list[ImplementationScheme] = []
    for combo in itertools.product(*value_lists):
        kwargs = dict(zip(names, combo))
        scheme = factory(**kwargs)
        label = ",".join(f"{name}={_axis_label(value)}"
                         for name, value in kwargs.items())
        portfolio.append(replace(scheme,
                                 name=f"{scheme.name}[{label}]"))
    return portfolio


@dataclass(frozen=True)
class GridSpec:
    """A *picklable, self-describing* scheme-grid recipe.

    The schemes a grid produces are plain dataclasses and pickle
    fine, but a whole grid ships (and records) better as its recipe:
    the factory named by ``module:qualname`` — resolvable in any
    process that can import the code — plus the swept axes.  The
    portfolio's process executor, benchmark JSON records and CI
    scaling runs all describe grids this way; :meth:`build` expands
    the spec through :func:`scheme_grid`, so job order and scheme
    names are identical to building the grid in the parent.
    """

    #: ``"package.module:function"`` reference to the scheme factory.
    factory: str
    #: ``(axis_name, (value, ...))`` pairs, in sweep order.
    axes: tuple[tuple[str, tuple], ...]

    @classmethod
    def of(cls, factory: "Callable[..., ImplementationScheme] | str" =
           case_study_scheme, **axes: Iterable) -> "GridSpec":
        """Spell a :func:`scheme_grid` call as a shippable spec.

        ``factory`` is a callable or an already-spelled
        ``"module:qualname"`` reference.
        """
        if not isinstance(factory, str):
            factory = f"{factory.__module__}:{factory.__qualname__}"
        return cls(factory=factory,
                   axes=tuple((name, tuple(values))
                              for name, values in axes.items()))

    def resolve_factory(self) -> Callable[..., ImplementationScheme]:
        module, _, qualname = self.factory.partition(":")
        target = importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
        return target

    def build(self) -> list[ImplementationScheme]:
        return scheme_grid(self.resolve_factory(),
                           **{name: values for name, values in self.axes})

    def describe(self) -> str:
        """JSON/log-friendly one-liner (``factory[axis=v1|v2,...]``)."""
        axes = ",".join(
            f"{name}={'|'.join(_axis_label(v) for v in values)}"
            for name, values in self.axes)
        return f"{self.factory}[{axes}]"

    def __len__(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total


#: The canonical 16-scheme design-space sweep of the case study:
#: buffer sizes {2, 5} × invocation periods {50, 100} ms × bolus
#: polling intervals {190, 380} ms × read policies {read-all,
#: read-one} — the portfolio the ``bench_portfolio_16_schemes``
#: benchmark and the ``repro-timing portfolio`` CLI default verify.
#: The invocation-kind axis is spelled out (periodic only) so these
#: scheme names match the CLI's default grid rows exactly — rows in
#: the committed BENCH record and a default CLI run cross-reference
#: by name.
CASE_STUDY_GRID_16 = GridSpec.of(
    case_study_scheme,
    buffer_size=(2, 5),
    period=(50, 100),
    bolus_poll=(190, 380),
    read_policy=(ReadPolicy.READ_ALL, ReadPolicy.READ_ONE),
    invocation_kind=(InvocationKind.PERIODIC,),
)


def case_study_grid_16() -> list[ImplementationScheme]:
    """Expand :data:`CASE_STUDY_GRID_16` (see its docstring)."""
    return CASE_STUDY_GRID_16.build()


#: The canonical fault sweep: loss budget k ∈ {0, 1} × replica count
#: r ∈ {1, 2} on the case-study platform — the cell the
#: ``bench_portfolio_fault_grid`` benchmark and the CI scaling job
#: verify.  The k=0, r=1 corner is the exact fault-free scheme, which
#: the benchmark asserts bit-identical to a plain case-study run.
CASE_STUDY_FAULT_GRID_4 = GridSpec.of(
    case_study_scheme,
    fault_k=(0, 1),
    fault_r=(1, 2),
)
