"""Extended GPCA-style pump model (the paper's reference platform).

The case-study platform "has been used for the Generic
Patient-Controlled-Analgesia (GPCA) infusion pump reference
implementation" (paper, footnote 4).  This module provides a richer
controller in that spirit — beyond the minimal Fig. 1 model — to
exercise the framework on a multi-requirement system:

* **bolus path** as in Fig. 1 (request → prime → infuse → complete),
* **pause/resume**: a pause request must stop an ongoing infusion
  within ``PAUSE_BOUND``,
* **occlusion alarm**: an occlusion signal during infusion must raise
  the alarm within ``ALARM_BOUND``.

Requirements catalog (:data:`GPCA_REQUIREMENTS`) names each bounded-
response property; :func:`verify_gpca_requirements` checks them all on
the PIM, and the tests transform the model against an IS1-style scheme
to re-derive platform-specific bounds for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pim import PIM
from repro.mc.observers import BoundedResponseResult, \
    check_bounded_response
from repro.ta.builder import NetworkBuilder
from repro.ta.model import Network

__all__ = [
    "GPCA_INPUTS",
    "GPCA_OUTPUTS",
    "GPCA_REQUIREMENTS",
    "Requirement",
    "build_gpca_network",
    "build_gpca_pim",
    "verify_gpca_requirements",
]

GPCA_INPUTS = ("m_BolusReq", "m_PauseReq", "m_Occlusion")
GPCA_OUTPUTS = ("c_StartInfusion", "c_StopInfusion", "c_Alarm")

_DEFAULTS = {
    "PRIME_MS": 250,
    "START_DEADLINE": 500,
    "INFUSE_MIN": 1200,
    "INFUSE_MAX": 1500,
    "PAUSE_BOUND": 300,
    "ALARM_BOUND": 150,
    "THINK_MIN": 2000,
    "REACT_AT": 400,
}


@dataclass(frozen=True)
class Requirement:
    """A named bounded-response requirement ``P(Δ)``."""

    name: str
    trigger: str
    response: str
    deadline_ms: int
    text: str

    def check(self, network: Network, *,
              max_states: int = 1_000_000) -> BoundedResponseResult:
        return check_bounded_response(
            network, self.trigger, self.response, self.deadline_ms,
            trace=False, max_states=max_states)


GPCA_REQUIREMENTS = (
    Requirement(
        name="REQ1-bolus-start",
        trigger="m_BolusReq", response="c_StartInfusion",
        deadline_ms=500,
        text="When a patient requests a bolus, a bolus infusion "
             "should start within 500ms."),
    Requirement(
        name="REQ2-pause-stop",
        trigger="m_PauseReq", response="c_StopInfusion",
        deadline_ms=300,
        text="When the clinician pauses the pump, the infusion should "
             "stop within 300ms."),
    Requirement(
        name="REQ3-occlusion-alarm",
        trigger="m_Occlusion", response="c_Alarm",
        deadline_ms=150,
        text="When an occlusion is detected, the alarm should sound "
             "within 150ms."),
)


def build_gpca_network(
        overrides: dict[str, int] | None = None) -> Network:
    """The extended pump PIM ``M ‖ ENV``."""
    constants = dict(_DEFAULTS)
    if overrides:
        unknown = set(overrides) - set(constants)
        if unknown:
            raise ValueError(
                f"unknown GPCA constants: {sorted(unknown)}")
        constants.update(overrides)

    net = NetworkBuilder("gpca_pim", constants=constants)
    net.channels(list(GPCA_INPUTS))
    net.channels(list(GPCA_OUTPUTS))

    # ---- M: the pump controller ---------------------------------------
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("BolusRequested", invariant="x <= START_DEADLINE")
    m.location("Infusing", invariant="x <= INFUSE_MAX")
    m.location("Pausing", invariant="x <= PAUSE_BOUND")
    m.location("OcclusionStop", invariant="x <= ALARM_BOUND")

    m.edge("Idle", "BolusRequested", sync="m_BolusReq?", update="x = 0")
    m.edge("BolusRequested", "Infusing", guard="x >= PRIME_MS",
           sync="c_StartInfusion!", update="x = 0")
    # Normal completion.
    m.edge("Infusing", "Idle", guard="x >= INFUSE_MIN",
           sync="c_StopInfusion!", update="x = 0")
    # Pause during infusion: stop promptly.
    m.edge("Infusing", "Pausing", sync="m_PauseReq?", update="x = 0")
    m.edge("Pausing", "Idle", sync="c_StopInfusion!", update="x = 0")
    # Occlusion during infusion: stop then alarm.
    m.edge("Infusing", "OcclusionStop", sync="m_Occlusion?",
           update="x = 0")
    m.edge("OcclusionStop", "Idle", sync="c_Alarm!", update="x = 0")

    # ---- ENV: patient + clinician + line ------------------------------
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Requested")
    env.location("Watching")
    env.location("WillPause", invariant="ex <= REACT_AT")
    env.location("WillOcclude", invariant="ex <= REACT_AT")
    env.location("AwaitStop")
    env.location("AwaitAlarm")

    env.edge("Rest", "Requested", guard="ex >= THINK_MIN",
             sync="m_BolusReq!", update="ex = 0")
    # The episode's fate is decided when the infusion starts (see the
    # infusion model for why the branch happens here).
    env.edge("Requested", "Watching", sync="c_StartInfusion?",
             update="ex = 0")
    env.edge("Requested", "WillPause", sync="c_StartInfusion?",
             update="ex = 0")
    env.edge("Requested", "WillOcclude", sync="c_StartInfusion?",
             update="ex = 0")
    # Normal completion.
    env.edge("Watching", "Rest", sync="c_StopInfusion?", update="ex = 0")
    # Pause episode.
    env.edge("WillPause", "AwaitStop", guard="ex >= REACT_AT",
             sync="m_PauseReq!", update="ex = 0")
    env.edge("AwaitStop", "Rest", sync="c_StopInfusion?",
             update="ex = 0")
    env.edge("WillPause", "Rest", sync="c_StopInfusion?",
             update="ex = 0")
    # Occlusion episode.
    env.edge("WillOcclude", "AwaitAlarm", guard="ex >= REACT_AT",
             sync="m_Occlusion!", update="ex = 0")
    env.edge("AwaitAlarm", "Rest", sync="c_Alarm?", update="ex = 0")
    env.edge("WillOcclude", "Rest", sync="c_StopInfusion?",
             update="ex = 0")

    return net.build()


def build_gpca_pim(overrides: dict[str, int] | None = None) -> PIM:
    return PIM(network=build_gpca_network(overrides), controller="M",
               environment="ENV")


def verify_gpca_requirements(
        pim: PIM | None = None, *,
        max_states: int = 1_000_000,
        jobs: int | None = None) -> dict[str, BoundedResponseResult]:
    """Check the whole requirements catalog on the (given) PIM.

    All requirements are compiled into one shared exploration
    (:func:`repro.mc.queries.check_many`) instead of one zone-graph
    sweep per requirement.  Verdicts are identical to the
    per-requirement :meth:`Requirement.check` calls; counterexample
    descriptions (when a requirement fails) are stated over the
    jointly-instrumented network, so they additionally mention the
    other requirements' observer clocks/flags.  ``max_states`` budgets
    that joint sweep, whose zone graph is somewhat larger than any
    single-requirement instrumentation — budgets tuned tightly to the
    old per-requirement visited counts need a small bump.
    """
    from repro.mc.queries import BoundedResponseQuery, check_many

    model = pim or build_gpca_pim()
    outcome = check_many(
        model.network,
        [BoundedResponseQuery(req.trigger, req.response,
                              req.deadline_ms)
         for req in GPCA_REQUIREMENTS],
        trace=False, max_states=max_states, jobs=jobs)
    return {req.name: result
            for req, result in zip(GPCA_REQUIREMENTS, outcome.results)}
