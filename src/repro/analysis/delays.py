"""Delay extraction from simulation traces (the oscilloscope analysis).

Section V defines the three delays of interest for an input/output
pair ``(m, c)``:

* **M-C delay**  ``Δmc = t_c − t_m`` — environment edge to actuation,
* **Input-Delay** ``Δmi = t_i − t_m`` — environment edge to the
  instant ``Code(PIM)`` reads the processed input,
* **Output-Delay** ``Δoc = t_c − t_o`` — code writing the output to
  the instant the environment observes it.

The trace tags requests end-to-end on the input side (``m`` →
``i_read`` keep the request tag) and outputs on the output side
(``o_write`` → ``c`` keep the output id).  Requests are matched to
outputs FIFO — the k-th request the code *consumed* is paired with the
k-th output the code *wrote* on the response channel.  This mirrors
how oscilloscope edges are paired in the paper and is exact whenever
each consumed request produces exactly one response (the REQ1
protocol).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import TraceRecorder

__all__ = ["RequestTiming", "pair_requests"]


@dataclass
class RequestTiming:
    """Per-request boundary timestamps (ms) and derived delays."""

    tag: int
    t_m: float
    t_i_read: float | None = None
    t_o_write: float | None = None
    t_c: float | None = None

    @property
    def completed(self) -> bool:
        return self.t_c is not None

    @property
    def input_delay(self) -> float | None:
        if self.t_i_read is None:
            return None
        return self.t_i_read - self.t_m

    @property
    def output_delay(self) -> float | None:
        if self.t_c is None or self.t_o_write is None:
            return None
        return self.t_c - self.t_o_write

    @property
    def mc_delay(self) -> float | None:
        if self.t_c is None:
            return None
        return self.t_c - self.t_m

    def __str__(self) -> str:
        def fmt(value: float | None) -> str:
            return f"{value:8.2f}" if value is not None else "      --"

        return (f"req #{self.tag}: m={self.t_m:9.2f} "
                f"Δmi={fmt(self.input_delay)} "
                f"Δoc={fmt(self.output_delay)} "
                f"Δmc={fmt(self.mc_delay)}")


def pair_requests(trace: TraceRecorder, input_channel: str,
                  output_channel: str) -> list[RequestTiming]:
    """Reconstruct per-request timings for one (m, c) pair."""
    requests: dict[int, RequestTiming] = {}
    order: list[int] = []
    for event in trace.events(kind="m", channel=input_channel):
        if event.tag is None:
            continue
        requests[event.tag] = RequestTiming(tag=event.tag,
                                            t_m=event.time_ms)
        order.append(event.tag)

    consumed_order: list[int] = []
    for event in trace.events(kind="i_read", channel=input_channel):
        if event.tag is None or event.tag not in requests:
            continue
        requests[event.tag].t_i_read = event.time_ms
        consumed_order.append(event.tag)

    writes = trace.events(kind="o_write", channel=output_channel)
    actuations = {e.tag: e for e in
                  trace.events(kind="c", channel=output_channel)}

    # FIFO: k-th consumed request ↔ k-th written response.
    for tag, write in zip(consumed_order, writes):
        timing = requests[tag]
        timing.t_o_write = write.time_ms
        actuation = actuations.get(write.tag)
        if actuation is not None:
            timing.t_c = actuation.time_ms

    return [requests[tag] for tag in order]
