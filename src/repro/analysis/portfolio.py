"""Portfolio comparison report — Table I generalized across schemes.

The paper's Table I compares one scheme's verified bounds against
measurements.  A portfolio run produces the *verified* half for many
candidate schemes at once; :func:`render_portfolio` lays the rows out
side by side so a designer can read off which platform configurations
keep REQ1-style deadlines satisfiable and at what Lemma-2 cost::

    PORTFOLIO VERIFICATION ... (Δ_mc = 500ms)
    +----------------------------+------+------+-------+-------+ ...
    | scheme                     | Δ̄_mi | Δ̄_oc | Δ'_mc | P(Δ)  | ...

Columns: the Lemma-1 Input/Output-Delay bounds, the Lemma-2 relaxed
deadline, the PSM verdicts for the original and relaxed deadlines,
the Section-V constraint check, Theorem 1's conclusion, the
deadline-sweep size/wall-time, and the row's *origin* — ``explored``
(its own sweep), ``memo=<donor>`` (Tier-1 canonical-hash reuse) or
``derived=<donor>`` (Lemma-1 dominance pruning) — everything a
:class:`repro.mc.portfolio.PortfolioResult` row carries.  When the
run had reuse enabled (or pruned anything) a totals line follows the
table: ``reuse: N explored, N memoized, N pruned``.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import replace
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mc.portfolio import PortfolioOutcome, PortfolioResult
    from repro.platforms.system import PlatformStats

__all__ = ["portfolio_rows", "render_portfolio",
           "render_fault_tolerance"]

_HEADERS = ("scheme", "Δ̄_mi", "Δ̄_oc", "Δ'_mc", "P(Δ)", "P(Δ')",
            "constraints", "Thm 1", "states", "origin", "time")


def _display_width(text: str) -> int:
    """Terminal columns, not code points — the Δ̄ headers carry a
    combining macron (U+0304) that ``len`` counts but terminals
    render at zero width."""
    return sum(0 if unicodedata.combining(char) else 1
               for char in text)


def _pad(text: str, width: int, *, left: bool) -> str:
    fill = " " * (width - _display_width(text))
    return text + fill if left else fill + text


def _verdict(value: bool | None, *, yes: str = "yes",
             no: str = "no") -> str:
    if value is None:
        return "--"
    return yes if value else no


def _origin(result: "PortfolioResult") -> str:
    """Where the row's verdicts came from: its own sweep, a memoized
    donor (Tier-1 reuse) or a dominating neighbor (Lemma-1 pruning)."""
    if result.memo_hit is not None:
        return f"memo={result.memo_hit}"
    if result.derived_from is not None:
        return f"derived={result.derived_from}"
    return "explored"


def _cells(result: "PortfolioResult") -> tuple[str, ...]:
    if not result.ok:
        reason = {"budget-exceeded": "budget exceeded"}.get(
            result.status, result.status)
        return (result.name, "--", "--", "--", "--", "--", reason,
                "--", "--", _origin(result),
                f"{result.wall_seconds:.2f}s")
    bounds = result.bounds
    return (
        result.name,
        f"{bounds.input_bound}ms",
        f"{bounds.output_bound}ms",
        f"{bounds.relaxed}ms",
        _verdict(result.original_holds),
        _verdict(result.relaxed_holds),
        _verdict(result.constraints_hold, yes="satisfied",
                 no="VIOLATED"),
        _verdict(result.guarantee),
        str(result.states) if result.states is not None else "--",
        _origin(result),
        f"{result.wall_seconds:.2f}s",
    )


def _sim_cell(stats: "PlatformStats | None") -> str:
    """Concrete counters condensed for one table cell."""
    if stats is None:
        return "--"
    return (f"ovf={stats.input_buffer_overflows}"
            f"+{stats.output_buffer_overflows} "
            f"drop={stats.dropped_by_code}")


def portfolio_rows(outcome: "PortfolioOutcome", *,
                   sim_stats: "Mapping[str, PlatformStats] | None" =
                   None) -> list[dict]:
    """JSON-ready rows (the shape the benchmark record commits).

    ``sim_stats`` (scheme name → :class:`PlatformStats` from a
    concrete :class:`~repro.platforms.system.ImplementedSystem` run)
    merges the simulation's overflow/drop counters into each row
    under a ``"sim"`` key, so symbolic verdicts and concrete counters
    land in one record.  Absent, the row shape is byte-identical to
    the pre-fault record shape.
    """
    rows = []
    for result in outcome:
        row = result.row()
        stats = (sim_stats or {}).get(result.name)
        if stats is not None:
            row["sim"] = {
                "input_buffer_overflows": stats.input_buffer_overflows,
                "output_buffer_overflows":
                    stats.output_buffer_overflows,
                "dropped_by_code": stats.dropped_by_code,
                "injected_message_losses":
                    stats.injected_message_losses,
                "injected_replica_faults":
                    stats.injected_replica_faults,
                "injected_preemption_bursts":
                    stats.injected_preemption_bursts,
            }
        rows.append(row)
    return rows


def render_portfolio(outcome: "PortfolioOutcome", *,
                     deadline_ms: int | None = None,
                     sim_stats: "Mapping[str, PlatformStats] | None" =
                     None) -> str:
    """ASCII comparison table across every scheme of the portfolio.

    With ``sim_stats`` (scheme name → concrete-run
    :class:`PlatformStats`) a ``sim`` column is appended so the
    symbolic overflow verdicts sit next to the simulation's actual
    overflow/drop counters; without it the layout is unchanged.
    """
    if deadline_ms is None and len(outcome):
        deadline_ms = outcome[0].deadline_ms
    headers = _HEADERS + ("sim",) if sim_stats is not None else _HEADERS
    rows = [_cells(result) for result in outcome]
    if sim_stats is not None:
        rows = [row + (_sim_cell(sim_stats.get(result.name)),)
                for row, result in zip(rows, outcome)]
    widths = [max(_display_width(header),
                  *(_display_width(row[i]) for row in rows))
              if rows else _display_width(header)
              for i, header in enumerate(headers)]

    def line(cells) -> str:
        # First column left-aligned (names), numbers right-aligned.
        body = " | ".join(
            _pad(cell, widths[i], left=(i == 0))
            for i, cell in enumerate(cells))
        return f"| {body} |"

    sep = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    guaranteed = len(outcome.guaranteed)
    lines = [
        f"PORTFOLIO VERIFICATION — {len(outcome)} schemes, "
        f"{guaranteed} guaranteed (Δ_mc = {deadline_ms}ms)",
        sep,
        line(headers),
        sep,
    ]
    lines.extend(line(row) for row in rows)
    lines.append(sep)
    lines.append(
        f"workers={outcome.jobs or 'sequential'} "
        f"executor={outcome.executor} "
        f"concurrency={outcome.concurrency}"
        f"{' fused' if outcome.fused else ''} "
        f"wall={outcome.wall_seconds:.2f}s")
    if outcome.reuse or outcome.pruned:
        lines.append(
            f"reuse: {outcome.explored} explored, "
            f"{outcome.memoized} memoized, "
            f"{outcome.pruned} pruned")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fault-tolerance report (Table I's fault column)
# ----------------------------------------------------------------------
_FT_HEADERS = ("scheme", "points", "max k ok", "Δ'(min k)",
               "Δ'(max k)", "inflation", "Thm 1")

_FAULT_AXIS_RE = re.compile(r"fault_[a-z]+=[^,\]]+,?")


def _base_name(name: str) -> str:
    """Scheme name with the ``fault_k=...`` axis labels stripped."""
    stripped = _FAULT_AXIS_RE.sub("", name)
    stripped = stripped.replace(",]", "]").replace("[]", "")
    return stripped.rstrip(",")


def _fault_group_key(result: "PortfolioResult") -> str:
    """Identity of a scheme modulo its loss budget ``k``.

    Replicas and jitter stay in the key — they are platform design
    choices; the fault-tolerance question is how much loss budget a
    *fixed* platform absorbs.
    """
    scheme = result.scheme
    masked = replace(scheme, name="",
                     faults=replace(scheme.faults, max_losses=0))
    return repr(masked)


def render_fault_tolerance(outcome: "PortfolioOutcome", *,
                           deadline_ms: int | None = None) -> str:
    """Largest tolerated fault budget per base scheme (Table-I style).

    Groups portfolio rows that differ only in ``FaultSpec.max_losses``
    and reports, per group: the swept fault points; the largest ``k``
    whose Theorem-1 guarantee holds (``max k ok``, ``--`` when none
    does); the Lemma-2 relaxed deadline at the smallest and largest
    swept ``k`` — the bounds are Lemma-1 analytic, so the inflation
    column quantifies the deadline price of the full fault budget
    even for points whose (expensive) PSM sweep was not run.
    """
    if deadline_ms is None and len(outcome):
        deadline_ms = outcome[0].deadline_ms
    groups: dict[str, list["PortfolioResult"]] = {}
    for result in outcome:
        groups.setdefault(_fault_group_key(result), []).append(result)

    def relaxed(member: "PortfolioResult") -> str:
        return (f"{member.relaxed_deadline_ms}ms"
                if member.relaxed_deadline_ms is not None else "--")

    rows: list[tuple[str, ...]] = []
    for members in groups.values():
        members = sorted(members,
                         key=lambda r: r.scheme.faults.max_losses)
        name = _base_name(members[0].name)
        points = ",".join(f"k={m.scheme.faults.max_losses}"
                          for m in members)
        baseline, top = members[0], members[-1]
        tolerated = [m for m in members if m.ok and m.guarantee]
        inflation = "--"
        if (top.relaxed_deadline_ms is not None
                and baseline.relaxed_deadline_ms is not None):
            inflation = (f"+{top.relaxed_deadline_ms - baseline.relaxed_deadline_ms}ms")
        if not tolerated:
            verdict_cells = ("--", "no")
        else:
            best = tolerated[-1]
            verdict_cells = (str(best.scheme.faults.max_losses),
                             f"yes@k={best.scheme.faults.max_losses}")
        rows.append((name, points, verdict_cells[0],
                     relaxed(baseline), relaxed(top), inflation,
                     verdict_cells[1]))

    widths = [max(_display_width(header),
                  *(_display_width(row[i]) for row in rows))
              if rows else _display_width(header)
              for i, header in enumerate(_FT_HEADERS)]

    def line(cells) -> str:
        body = " | ".join(
            _pad(cell, widths[i], left=(i == 0))
            for i, cell in enumerate(cells))
        return f"| {body} |"

    sep = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    lines = [
        f"FAULT TOLERANCE — {len(groups)} base scheme(s), "
        f"{len(outcome)} fault points (Δ_mc = {deadline_ms}ms)",
        sep,
        line(_FT_HEADERS),
        sep,
    ]
    lines.extend(line(row) for row in rows)
    lines.append(sep)
    return "\n".join(lines)
