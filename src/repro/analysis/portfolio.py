"""Portfolio comparison report — Table I generalized across schemes.

The paper's Table I compares one scheme's verified bounds against
measurements.  A portfolio run produces the *verified* half for many
candidate schemes at once; :func:`render_portfolio` lays the rows out
side by side so a designer can read off which platform configurations
keep REQ1-style deadlines satisfiable and at what Lemma-2 cost::

    PORTFOLIO VERIFICATION ... (Δ_mc = 500ms)
    +----------------------------+------+------+-------+-------+ ...
    | scheme                     | Δ̄_mi | Δ̄_oc | Δ'_mc | P(Δ)  | ...

Columns: the Lemma-1 Input/Output-Delay bounds, the Lemma-2 relaxed
deadline, the PSM verdicts for the original and relaxed deadlines,
the Section-V constraint check, Theorem 1's conclusion, the
deadline-sweep size/wall-time, and the row's *origin* — ``explored``
(its own sweep), ``memo=<donor>`` (Tier-1 canonical-hash reuse) or
``derived=<donor>`` (Lemma-1 dominance pruning) — everything a
:class:`repro.mc.portfolio.PortfolioResult` row carries.  When the
run had reuse enabled (or pruned anything) a totals line follows the
table: ``reuse: N explored, N memoized, N pruned``.
"""

from __future__ import annotations

import unicodedata
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mc.portfolio import PortfolioOutcome, PortfolioResult

__all__ = ["portfolio_rows", "render_portfolio"]

_HEADERS = ("scheme", "Δ̄_mi", "Δ̄_oc", "Δ'_mc", "P(Δ)", "P(Δ')",
            "constraints", "Thm 1", "states", "origin", "time")


def _display_width(text: str) -> int:
    """Terminal columns, not code points — the Δ̄ headers carry a
    combining macron (U+0304) that ``len`` counts but terminals
    render at zero width."""
    return sum(0 if unicodedata.combining(char) else 1
               for char in text)


def _pad(text: str, width: int, *, left: bool) -> str:
    fill = " " * (width - _display_width(text))
    return text + fill if left else fill + text


def _verdict(value: bool | None, *, yes: str = "yes",
             no: str = "no") -> str:
    if value is None:
        return "--"
    return yes if value else no


def _origin(result: "PortfolioResult") -> str:
    """Where the row's verdicts came from: its own sweep, a memoized
    donor (Tier-1 reuse) or a dominating neighbor (Lemma-1 pruning)."""
    if result.memo_hit is not None:
        return f"memo={result.memo_hit}"
    if result.derived_from is not None:
        return f"derived={result.derived_from}"
    return "explored"


def _cells(result: "PortfolioResult") -> tuple[str, ...]:
    if not result.ok:
        reason = {"budget-exceeded": "budget exceeded"}.get(
            result.status, result.status)
        return (result.name, "--", "--", "--", "--", "--", reason,
                "--", "--", _origin(result),
                f"{result.wall_seconds:.2f}s")
    bounds = result.bounds
    return (
        result.name,
        f"{bounds.input_bound}ms",
        f"{bounds.output_bound}ms",
        f"{bounds.relaxed}ms",
        _verdict(result.original_holds),
        _verdict(result.relaxed_holds),
        _verdict(result.constraints_hold, yes="satisfied",
                 no="VIOLATED"),
        _verdict(result.guarantee),
        str(result.states) if result.states is not None else "--",
        _origin(result),
        f"{result.wall_seconds:.2f}s",
    )


def portfolio_rows(outcome: "PortfolioOutcome") -> list[dict]:
    """JSON-ready rows (the shape the benchmark record commits)."""
    return [result.row() for result in outcome]


def render_portfolio(outcome: "PortfolioOutcome", *,
                     deadline_ms: int | None = None) -> str:
    """ASCII comparison table across every scheme of the portfolio."""
    if deadline_ms is None and len(outcome):
        deadline_ms = outcome[0].deadline_ms
    rows = [_cells(result) for result in outcome]
    widths = [max(_display_width(header),
                  *(_display_width(row[i]) for row in rows))
              if rows else _display_width(header)
              for i, header in enumerate(_HEADERS)]

    def line(cells) -> str:
        # First column left-aligned (names), numbers right-aligned.
        body = " | ".join(
            _pad(cell, widths[i], left=(i == 0))
            for i, cell in enumerate(cells))
        return f"| {body} |"

    sep = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
    guaranteed = len(outcome.guaranteed)
    lines = [
        f"PORTFOLIO VERIFICATION — {len(outcome)} schemes, "
        f"{guaranteed} guaranteed (Δ_mc = {deadline_ms}ms)",
        sep,
        line(_HEADERS),
        sep,
    ]
    lines.extend(line(row) for row in rows)
    lines.append(sep)
    lines.append(
        f"workers={outcome.jobs or 'sequential'} "
        f"executor={outcome.executor} "
        f"concurrency={outcome.concurrency}"
        f"{' fused' if outcome.fused else ''} "
        f"wall={outcome.wall_seconds:.2f}s")
    if outcome.reuse or outcome.pruned:
        lines.append(
            f"reuse: {outcome.explored} explored, "
            f"{outcome.memoized} memoized, "
            f"{outcome.pruned} pruned")
    return "\n".join(lines)
