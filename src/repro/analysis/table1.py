"""Table I — the paper's experiment result, regenerated.

Combines the framework's verified upper bounds with 60 simulated bolus
trials into the same table the paper prints::

                       M-C delay  Input-Delay  Output-Delay  Buffer overflow
  Verified bound (PSM)   1430ms       490ms        440ms     not occurring
  Measured (IMP)  Avg     ...          ...          ...      not occurring
                  Max     ...          ...          ...
                  Min     ...          ...          ...

plus the REQ1-violation count the paper reports in-text (53 of 60
scenarios above 500 ms).  :func:`run_case_study` is the programmatic
entry; the ``bench_table1`` benchmark and the
``infusion_pump_study.py`` example both call it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.delays import RequestTiming, pair_requests
from repro.analysis.stats import DelayStats, summarize
from repro.apps.infusion import REQ1_DEADLINE_MS, build_infusion_pim
from repro.apps.schemes import case_study_scheme
from repro.codegen import build_controller
from repro.core.framework import TimingVerificationFramework, \
    VerificationReport
from repro.core.pim import PIM
from repro.core.scheme import ImplementationScheme
from repro.envs import ClosedLoopRequester
from repro.platforms import ImplementedSystem, PlatformStats

__all__ = ["Table1", "MeasuredDelays", "simulate_trials",
           "run_case_study"]


@dataclass
class MeasuredDelays:
    """The measured half of Table I."""

    timings: list[RequestTiming]
    stats: PlatformStats
    requests: int
    responses: int
    timeouts: int

    @property
    def mc(self) -> DelayStats | None:
        return summarize(t.mc_delay for t in self.timings)

    @property
    def input(self) -> DelayStats | None:
        return summarize(t.input_delay for t in self.timings)

    @property
    def output(self) -> DelayStats | None:
        return summarize(t.output_delay for t in self.timings)

    def req_violations(self, deadline_ms: float) -> int:
        """Trials whose M-C delay exceeds the deadline."""
        return sum(1 for t in self.timings
                   if t.mc_delay is not None and t.mc_delay > deadline_ms)

    @property
    def buffer_overflow(self) -> bool:
        return self.stats.any_buffer_overflow


def simulate_trials(pim: PIM, scheme: ImplementationScheme, *,
                    trials: int = 60, seed: int = 2015,
                    input_channel: str = "m_BolusReq",
                    output_channel: str = "c_StartInfusion",
                    think_ms: tuple[int, int] = (2000, 4000),
                    trace_listener=None,
                    ) -> MeasuredDelays:
    """Run the paper's measurement campaign on the simulated platform.

    ``trace_listener`` (optional) sees every
    :class:`~repro.sim.trace.TraceEvent` as it is recorded — the hook
    a live conformance monitor (:mod:`repro.monitor`) attaches to, so
    simulated runs self-check against the verified PSM while they
    execute.
    """
    controller = build_controller(pim.m, constants=pim.network.constants)
    system = ImplementedSystem(
        controller, scheme, pim.input_channels(), pim.output_channels(),
        seed=seed)
    if trace_listener is not None:
        system.trace.add_listener(trace_listener)
    requester = ClosedLoopRequester(
        system, input_channel, output_channel, count=trials,
        think_ms=think_ms)
    system.start()
    requester.start()
    # Generous horizon: every trial takes at most think + one full
    # request-response round trip.
    horizon_ms = trials * (think_ms[1] + 12_000) + 10_000
    system.run_for(horizon_ms)
    timings = pair_requests(system.trace, input_channel, output_channel)
    return MeasuredDelays(
        timings=timings,
        stats=system.stats(),
        requests=requester.requests_made,
        responses=requester.responses_seen,
        timeouts=requester.timeouts,
    )


@dataclass
class Table1:
    """The full reproduced Table I."""

    report: VerificationReport
    measured: MeasuredDelays
    deadline_ms: int = REQ1_DEADLINE_MS
    notes: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def verified_mc(self) -> int:
        assert self.report.bounds is not None
        return self.report.bounds.relaxed

    @property
    def verified_input(self) -> int:
        assert self.report.bounds is not None
        return self.report.bounds.input_bound

    @property
    def verified_output(self) -> int:
        assert self.report.bounds is not None
        return self.report.bounds.output_bound

    @property
    def shape_holds(self) -> bool:
        """The paper's headline: measured ≤ verified, everywhere."""
        mc, inp, out = (self.measured.mc, self.measured.input,
                        self.measured.output)
        if mc is None or inp is None or out is None:
            return False
        return (mc.max <= self.verified_mc
                and inp.max <= self.verified_input
                and out.max <= self.verified_output
                and not self.measured.buffer_overflow)

    # ------------------------------------------------------------------
    def render(self) -> str:
        mc, inp, out = (self.measured.mc, self.measured.input,
                        self.measured.output)

        def row(label: str, a: str, b: str, c: str, d: str) -> str:
            return f"| {label:<26} | {a:>10} | {b:>12} | {c:>13} | " \
                   f"{d:>15} |"

        sep = ("+" + "-" * 28 + "+" + "-" * 12 + "+" + "-" * 14
               + "+" + "-" * 15 + "+" + "-" * 17 + "+")
        overflow_model = "not occurring" if self.report.constraints_hold \
            else "OCCURRING"
        overflow_meas = "not occurring" \
            if not self.measured.buffer_overflow else "OCCURRING"

        def ms(value: float | None) -> str:
            return f"{value:.0f}ms" if value is not None else "--"

        lines = [
            "TABLE I. THE EXPERIMENT RESULT (reproduced)",
            sep,
            row("", "M-C delay", "Input-Delay", "Output-Delay",
                "Buffer overflow"),
            sep,
            row("Verified bound (PSM)", f"{self.verified_mc}ms",
                f"{self.verified_input}ms", f"{self.verified_output}ms",
                overflow_model),
            sep,
            row("Measured (IMP)  Avg",
                ms(mc.avg if mc else None),
                ms(inp.avg if inp else None),
                ms(out.avg if out else None), overflow_meas),
            row("                Max",
                ms(mc.max if mc else None),
                ms(inp.max if inp else None),
                ms(out.max if out else None), ""),
            row("                Min",
                ms(mc.min if mc else None),
                ms(inp.min if inp else None),
                ms(out.min if out else None), ""),
            sep,
        ]
        violations = self.measured.req_violations(self.deadline_ms)
        lines.append(
            f"REQ1 (Δ={self.deadline_ms}ms): violated in {violations} of "
            f"{len(self.measured.timings)} measured scenarios "
            f"(paper: 53 of 60)")
        if self.report.psm_original_result is not None:
            lines.append(
                f"PSM ⊨ P({self.deadline_ms})?  "
                f"{'yes' if self.report.psm_original_result.holds else 'no'}"
                f" — paper: no")
        if self.report.psm_relaxed_result is not None:
            lines.append(
                f"PSM ⊨ P({self.verified_mc})?  "
                f"{'yes' if self.report.psm_relaxed_result.holds else 'no'}"
                f" — paper: yes")
        lines.append(
            f"shape holds (all measured ≤ verified, no overflow): "
            f"{self.shape_holds}")
        lines.extend(self.notes)
        return "\n".join(lines)


def run_case_study(*, trials: int = 60, seed: int = 2015,
                   max_states: int = 2_000_000,
                   measure_suprema: bool = False,
                   include_progress: bool = False) -> Table1:
    """The complete Section-VI experiment: verify + measure + tabulate.

    ``include_progress`` additionally runs the (expensive) stuck-state
    scan; the dedicated constraint benchmark covers it.
    """
    pim = build_infusion_pim()
    scheme = case_study_scheme()
    framework = TimingVerificationFramework(max_states=max_states)
    report = framework.verify(
        pim, scheme,
        input_channel="m_BolusReq",
        output_channel="c_StartInfusion",
        deadline_ms=REQ1_DEADLINE_MS,
        measure_suprema=measure_suprema,
        include_progress=include_progress)
    measured = simulate_trials(pim, scheme, trials=trials, seed=seed)
    return Table1(report=report, measured=measured)
