"""Fig. 3 regeneration: the mc/io-boundary interaction timeline.

The paper's Fig. 3 shows three pulse inputs read by interrupts, five
periodic invocations, and the read-one vs read-all difference at the
4th invocation.  :func:`fig3_scenario` re-creates exactly that run on
the simulated platform; :func:`render_timeline` draws any trace as an
ASCII swim-lane diagram (ENV / Platform / Code lanes, like the
figure's three columns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen import build_controller
from repro.core.scheme import ReadPolicy
from repro.envs import PatternEnvironment, ScriptedPattern
from repro.platforms import ImplementedSystem
from repro.sim.trace import TraceRecorder
from repro.ta.builder import NetworkBuilder

__all__ = ["render_timeline", "fig3_scenario", "Fig3Result"]

_LANES = {
    "m": "ENV",
    "c": "ENV",
    "sensed": "Platform",
    "i_ready": "Platform",
    "enq": "Platform",
    "deq": "Platform",
    "o_pickup": "Platform",
    "drop": "Platform",
    "invoke": "Code(PIM)",
    "i_read": "Code(PIM)",
    "o_write": "Code(PIM)",
}


def render_timeline(trace: TraceRecorder, *,
                    until_ms: float | None = None,
                    lanes: tuple[str, ...] = ("ENV", "Platform",
                                              "Code(PIM)")) -> str:
    """ASCII swim-lane rendering of a platform trace (Fig. 3 style)."""
    width = 16
    header = f"{'time':>10}  " + "".join(f"{lane:<{width + 8}}"
                                         for lane in lanes)
    lines = [header, "-" * len(header)]
    for event in trace:
        if until_ms is not None and event.time_ms > until_ms:
            break
        lane = _LANES.get(event.kind)
        if lane is None or lane not in lanes:
            continue
        tag = f"#{event.tag}" if event.tag is not None else ""
        text = f"{event.kind} {event.channel}{tag}"
        cells = {name: "" for name in lanes}
        cells[lane] = text
        row = f"{event.time_ms:9.1f}ms  " + "".join(
            f"{cells[name]:<{width + 8}}" for name in lanes)
        lines.append(row.rstrip())
    return "\n".join(lines)


@dataclass
class Fig3Result:
    """Outcome of the Fig. 3 scenario for one read policy."""

    policy: ReadPolicy
    trace: TraceRecorder
    #: Inputs consumed per invocation index (1-based, as in Fig. 3).
    reads_per_invocation: dict[int, list[str]]

    def rendered(self) -> str:
        return render_timeline(self.trace)


def _fig3_pim_controller():
    """A pass-through controller: every input mi yields output ci.

    Fig. 3 abstracts from the controller logic, so the scenario uses a
    minimal single-location automaton that can always consume
    ``m_Fig3`` — the read-one/read-all difference is then purely the
    platform's doing.
    """
    net = NetworkBuilder("fig3")
    net.channel("m_Fig3")
    net.channel("c_Fig3")
    auto = net.automaton("M")
    auto.location("Run", initial=True)
    auto.edge("Run", "Run", sync="m_Fig3?")
    network = net.build(check=False)
    return network.automaton("M")


def fig3_scenario(policy: ReadPolicy, *, seed: int = 7) -> Fig3Result:
    """Re-create Fig. 3: three pulses, five invocations, one policy.

    The pulses arrive so that two processed inputs (i2, i3) are
    pending by the 4th invocation: read-one consumes i2 at invocation
    4 and i3 at invocation 5; read-all consumes both at invocation 4.
    """
    from repro.core.scheme import (
        DeliveryMechanism,
        ImplementationScheme,
        InputSpec,
        InvocationKind,
        InvocationSpec,
        IOSpec,
        OutputSpec,
        ReadMechanism,
        SignalType,
    )

    scheme = ImplementationScheme(
        name=f"IS1-fig3-{policy.value}",
        inputs={"m_Fig3": InputSpec(signal=SignalType.PULSE,
                                    mechanism=ReadMechanism.INTERRUPT,
                                    delay_min=1, delay_max=3)},
        outputs={"c_Fig3": OutputSpec(mechanism=ReadMechanism.INTERRUPT,
                                      delay_min=1, delay_max=3)},
        io_inputs={"m_Fig3": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                    buffer_size=5, read_policy=policy)},
        io_outputs={"c_Fig3": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                     buffer_size=5)},
        invocation=InvocationSpec(kind=InvocationKind.PERIODIC,
                                  period=100, bcet=1, wcet=5),
    ).validate()

    controller = build_controller(_fig3_pim_controller())
    system = ImplementedSystem(controller, scheme, ["m_Fig3"],
                               ["c_Fig3"], seed=seed)
    env = PatternEnvironment(system)
    # Invocations fire at t = 0, 100, 200, 300, 400, 500 (1-based
    # numbering as in Fig. 3).  m1 lands before invocation 3; m2 and
    # m3 both land between invocations 3 and 4 — the figure's crux:
    # read-one uses only i2 at invocation 4 (i3 waits for 5), read-all
    # uses i2 and i3 together at invocation 4.
    env.schedule(ScriptedPattern([
        (150.0, "m_Fig3"),   # m1 → processed ≤153 → read at inv 3
        (210.0, "m_Fig3"),   # m2 ─┐ both pending at inv 4 (t=300)
        (240.0, "m_Fig3"),   # m3 ─┘
    ]))
    system.start()
    system.run_for(550.0)

    invokes = [e.time_us for e in system.trace.events(kind="invoke")]
    reads: dict[int, list[str]] = {k: [] for k in
                                   range(1, len(invokes) + 1)}
    for event in system.trace.events(kind="i_read"):
        for k, t_invoke in enumerate(invokes, start=1):
            if event.time_us == t_invoke:
                reads[k].append(f"i{event.tag}")
    return Fig3Result(policy=policy, trace=system.trace,
                      reads_per_invocation=reads)
