"""Analysis layer: delay extraction, statistics, tables, figures."""

from repro.analysis.blocks import render_blocks
from repro.analysis.delays import RequestTiming, pair_requests
from repro.analysis.portfolio import portfolio_rows, render_portfolio
from repro.analysis.stats import DelayStats, summarize
from repro.analysis.table1 import (
    MeasuredDelays,
    Table1,
    run_case_study,
    simulate_trials,
)
from repro.analysis.timeline import Fig3Result, fig3_scenario, \
    render_timeline

__all__ = [
    "DelayStats",
    "Fig3Result",
    "MeasuredDelays",
    "RequestTiming",
    "Table1",
    "fig3_scenario",
    "pair_requests",
    "portfolio_rows",
    "render_blocks",
    "render_portfolio",
    "render_timeline",
    "run_case_study",
    "simulate_trials",
    "summarize",
]
