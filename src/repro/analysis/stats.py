"""Summary statistics for measured delays (Table I's Avg/Max/Min rows)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["DelayStats", "summarize"]


@dataclass(frozen=True)
class DelayStats:
    """avg/max/min over a non-empty sample of delays (ms)."""

    count: int
    avg: float
    max: float
    min: float

    def __str__(self) -> str:
        return (f"avg={self.avg:.0f}ms max={self.max:.0f}ms "
                f"min={self.min:.0f}ms (n={self.count})")

    def within(self, bound_ms: float) -> bool:
        """True when every sample respects the bound."""
        return self.max <= bound_ms

    def violations(self, deadline_ms: float,
                   samples: Sequence[float] | None = None) -> int:
        """Number of samples exceeding a deadline (needs the samples)."""
        if samples is None:
            raise ValueError("pass the raw samples to count violations")
        return sum(1 for value in samples if value > deadline_ms)


def summarize(samples: Iterable[float | None]) -> DelayStats | None:
    """Stats over the non-None samples; None for an empty sample."""
    values = [s for s in samples if s is not None]
    if not values:
        return None
    return DelayStats(
        count=len(values),
        avg=sum(values) / len(values),
        max=max(values),
        min=min(values),
    )
