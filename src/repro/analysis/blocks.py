"""Fig. 2 regeneration: the implementation ↔ PSM block mapping.

Renders the paper's two block diagrams from a transformed PSM: the
implementation side (Input-Device / Code-Execution / Output-Device
between the m/c and i/o variables) and the model side (the
Definition-3 automata), with the component correspondences that
Fig. 2's dashed arrows depict.
"""

from __future__ import annotations

from repro.core.psm import PSM

__all__ = ["render_blocks"]


def _box(lines: list[str], width: int) -> list[str]:
    top = "+" + "-" * (width + 2) + "+"
    body = [f"| {line:<{width}} |" for line in lines]
    return [top] + body + [top]


def render_blocks(psm: PSM) -> str:
    """ASCII Fig. 2 for a concrete PSM."""
    inputs = ", ".join(psm.pim.input_channels())
    outputs = ", ".join(psm.pim.output_channels())
    io_in = ", ".join(psm.io_name(ch)
                      for ch in psm.pim.input_channels())
    io_out = ", ".join(psm.io_name(ch)
                       for ch in psm.pim.output_channels())

    width = max(46, len(inputs) + 12, len(outputs) + 12)
    impl = [
        "(a) Implementation",
        "",
        f"   m: {inputs}",
        "        │ mc-boundary",
        "   ┌────▼─────────┐   ┌──────────────┐   ┌──────────────┐",
        "   │ Input-Device │ i │   Code       │ o │ Output-Device│",
        "   │              ├──▶│  Execution   ├──▶│              │",
        "   └──────────────┘   │  Code(PIM)   │   └──────┬───────┘",
        "                      └──────────────┘          │",
        f"   i: {io_in}",
        f"   o: {io_out}",
        "        │ mc-boundary",
        f"   c: {outputs}",
    ]

    mapping = [
        "(b) Platform-Specific Model (PSM)      block ⇄ automaton",
        "",
    ]
    role_to_block = {
        "MIO": "Code(PIM)",
        "EXEIO": "Code Execution",
        "ENVMC": "Real Environment",
    }
    for role, name in psm.components():
        if role.startswith("IFMI"):
            block = "Input-Device"
        elif role.startswith("IFOC"):
            block = "Output-Device"
        else:
            block = role_to_block.get(role, role)
        mapping.append(f"   {block:<18} ⇄ {name}")

    composition = " ‖ ".join(name for _, name in psm.components())
    mapping += ["", f"   PSM = {composition}"]
    return "\n".join(impl + [""] + mapping)
