#!/usr/bin/env python
"""End-to-end smoke test of the ``repro serve`` daemon.

Boots the daemon as a real subprocess (``python -m repro.cli serve``
on a unix socket), then exercises the acceptance path of the service:

1. ping until the server answers;
2. submit a 6-scheme tiny portfolio — rows must be **bit-identical**
   (volatile keys aside) to a local ``PortfolioVerifier`` run;
3. submit the same portfolio again — every row must now be served
   from the verdict cache (``origin == "memo"`` for all jobs, cache
   hits ≥ job count);
4. stream a simulated trace through the ``monitor`` op — the verdict
   must come back conforming, and a second request must reuse the
   server's precompiled monitor model;
5. SIGTERM the daemon — it must drain and exit 0.

Run from a checkout (``python scripts/service_smoke.py``) or CI; any
failure exits nonzero with a message.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT), str(ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.apps.schemes import scheme_grid  # noqa: E402
from repro.mc.portfolio import PortfolioVerifier, portfolio_jobs  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402
from tests.conftest import build_tiny_pim, build_tiny_scheme  # noqa: E402

DEADLINE = 10
VOLATILE = ("seconds", "memo_hit", "derived_from")


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def stripped(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in VOLATILE}


def wait_for_server(address: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout=5.0) as client:
                if client.ping().get("type") == "pong":
                    return
        except (OSError, ServiceError):
            time.sleep(0.2)
    fail(f"server at {address} never answered a ping")


def simulated_trace() -> list:
    """One closed-loop run of the tiny platform, as trace events."""
    from repro.codegen import build_controller
    from repro.envs import ClosedLoopRequester
    from repro.platforms import ImplementedSystem

    pim, scheme = build_tiny_pim(), build_tiny_scheme()
    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=0)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack", count=4,
                                    think_ms=(20, 40), timeout_ms=500,
                                    first_press_ms=5)
    system.start()
    requester.start()
    system.run_for(4 * 600 + 1000)
    return list(system.trace)


def main() -> int:
    jobs = portfolio_jobs(
        build_tiny_pim(),
        scheme_grid(build_tiny_scheme, buffer_size=(1, 2, 3),
                    period=(4, 5)),
        input_channel="m_Req", output_channel="c_Ack",
        deadline_ms=DEADLINE, measure_suprema=True)
    expected = [
        stripped(json.loads(json.dumps(r.row(), default=str)))
        for r in PortfolioVerifier(jobs=1).run(jobs)
    ]

    trace = simulated_trace()

    env = dict(os.environ)
    # The daemon resolves monitor factories from tests.conftest, so
    # the repo root joins src/ on its path.
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(ROOT / "src"), str(ROOT),
                    env.get("PYTHONPATH")) if p)
    with tempfile.TemporaryDirectory() as tmp:
        address = os.path.join(tmp, "repro.sock")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "--jobs", "2",
             "serve", "--unix", address],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            wait_for_server(address)
            with ServiceClient(address, timeout=120.0) as client:
                first = client.run_jobs(jobs)
                second = client.run_jobs(jobs)
                monitored = client.monitor(
                    [trace],
                    pim_factory="tests.conftest:build_tiny_pim",
                    scheme_factory="tests.conftest:build_tiny_scheme",
                    requirement=["m_Req", "c_Ack", DEADLINE])
                remonitored = client.monitor(
                    [trace],
                    pim_factory="tests.conftest:build_tiny_pim",
                    scheme_factory="tests.conftest:build_tiny_scheme")
                stats = client.stats()
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                output, _ = server.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()
                output, _ = server.communicate()
                fail("server did not drain within 60s of SIGTERM")

        if [stripped(r) for r in first.ordered_rows()] != expected:
            fail("first run's rows differ from the local run")
        if [stripped(r) for r in second.ordered_rows()] != expected:
            fail("second run's rows differ from the local run")
        if "explored" not in first.origins():
            fail(f"first run explored nothing: {first.origins()}")
        if second.origins() != ["memo"] * len(jobs):
            fail(f"second run was not 100% cache-served: "
                 f"{second.origins()}")
        hits = stats["cache"]["hits"]
        if hits < len(jobs):
            fail(f"cache hits {hits} < job count {len(jobs)}")
        monitor_rows = monitored.ordered_rows()
        if monitored.origins() != ["monitor"]:
            fail(f"unexpected monitor origins: {monitored.origins()}")
        if not (monitor_rows and monitor_rows[0].get("status") == "ok"
                and monitor_rows[0].get("conforming")):
            fail(f"simulated trace did not conform: {monitor_rows}")
        if not remonitored.ordered_rows()[0].get("conforming"):
            fail("re-monitored trace did not conform")
        monitor_stats = stats.get("monitor") or {}
        if monitor_stats.get("models") != 1:
            fail(f"monitor model not cached across requests: "
                 f"{monitor_stats}")
        if server.returncode != 0:
            fail(f"server exited {server.returncode}:\n{output}")
        if "server drained" not in output:
            fail(f"no drain banner in server output:\n{output}")

    print(f"OK: {len(jobs)} jobs verified twice — run 1 origins "
          f"{first.origins()}, run 2 all memo, {hits} cache hits, "
          f"conforming monitor verdict (model cached), "
          f"clean SIGTERM drain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
