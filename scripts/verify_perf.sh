#!/usr/bin/env bash
# Perf regression gate, callable from `verify` tooling/CI.
#
# Two modes, run as two *separate* CI jobs so correctness and timing
# never share a failure policy:
#
#   --quick    BLOCKING bit-identity gate: re-runs the tiny PSM
#              workload and fails when states/transitions drift from
#              the newest committed BENCH_<date>.json, when the
#              Extra_M/Extra_LU parity checks disagree, or when the
#              portfolio's verdict memo stops being semantically
#              invisible (reuse-on rows must be bit-identical to
#              reuse-off, with at least one actual memo hit).  Tiny
#              wall times are jitter, so timings are reported but
#              never fail this mode — which is why it is safe to make
#              the job blocking.
#
#   --timings  ADVISORY timed gate (also the default with no args):
#              re-runs the headline zone-graph benchmark
#              (bench_s1_case_study_psm, numpy backend, sequential +
#              sharded jobs variants, best of 3) and fails when any
#              variant is >25% slower than the committed record — or
#              when states/transitions stop being bit-identical.
#              Shared CI boxes jitter beyond the 25% tolerance, so CI
#              wires this as a continue-on-error job; treat a red run
#              as a prompt to re-measure, not a verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
for arg in "$@"; do
    case "${arg}" in
        --quick) quick="--quick" ;;
        --timings) quick="" ;;
        *) echo "verify_perf: unknown argument ${arg}" >&2; exit 2 ;;
    esac
done

latest=$(ls BENCH_*.json 2>/dev/null | grep -v -- '-quick' | sort | tail -1)
if [[ -z "${latest}" ]]; then
    echo "verify_perf: no committed BENCH_<date>.json found" >&2
    exit 2
fi

mode="advisory timed gate"
if [[ -n "${quick}" ]]; then
    mode="blocking bit-identity gate"
fi
echo "verify_perf: checking against ${latest} (${mode})"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python benchmarks/run_benchmarks.py --check "${latest}" ${quick}
