#!/usr/bin/env bash
# Perf regression gate, callable from `verify` tooling/CI.
#
# Re-runs the headline zone-graph benchmark (bench_s1_case_study_psm,
# numpy backend, sequential + sharded jobs variants) and fails when any
# variant is >25% slower than the newest committed BENCH_<date>.json —
# or when states/transitions stop being bit-identical to the record.
set -euo pipefail
cd "$(dirname "$0")/.."

latest=$(ls BENCH_*.json 2>/dev/null | grep -v -- '-quick' | sort | tail -1)
if [[ -z "${latest}" ]]; then
    echo "verify_perf: no committed BENCH_<date>.json found" >&2
    exit 2
fi

echo "verify_perf: checking against ${latest}"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python benchmarks/run_benchmarks.py --check "${latest}"
