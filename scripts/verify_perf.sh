#!/usr/bin/env bash
# Perf regression gate, callable from `verify` tooling/CI.
#
# Default: re-runs the headline zone-graph benchmark
# (bench_s1_case_study_psm, numpy backend, sequential + sharded jobs
# variants) and fails when any variant is >25% slower than the newest
# committed BENCH_<date>.json — or when states/transitions stop being
# bit-identical to the record.
#
# --quick: CI mode — re-runs only the tiny PSM workload and gates on
# bit-identical states/transitions (tiny wall times are jitter, so
# they are reported but never fail the gate).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
for arg in "$@"; do
    case "${arg}" in
        --quick) quick="--quick" ;;
        *) echo "verify_perf: unknown argument ${arg}" >&2; exit 2 ;;
    esac
done

latest=$(ls BENCH_*.json 2>/dev/null | grep -v -- '-quick' | sort | tail -1)
if [[ -z "${latest}" ]]; then
    echo "verify_perf: no committed BENCH_<date>.json found" >&2
    exit 2
fi

echo "verify_perf: checking against ${latest}${quick:+ (quick mode)}"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python benchmarks/run_benchmarks.py --check "${latest}" ${quick}
